(* Packed rectangle sets and the minimum-gap kernels.

   One flat buffer of (x0,y0,x1,y1) quadruples, kept sorted by
   Rect.compare order (x0, then y0, x1, y1), with the bounding box
   cached alongside.  The record is mutable so a set can double as a
   reusable scratch buffer for [apply_into]; sets that escape into
   shared structures (elaborated elements, memo entries) are never
   mutated after construction.

   The backing store comes in two interchangeable flavours behind one
   switch: ordinary [int array]s on the OCaml heap, and off-heap
   [Bigarray.Array1] storage whose payload the GC never scans or moves.
   Both produce bit-identical kernel results; the [kernel] bench
   experiment measures the ns/call and allocation trade between them.

   The sweep kernel itself is allocation-free: all of its mutable state
   (best pair, overlap flag, active-band cursors) lives in the
   caller-owned [ws] scratch record, and its helpers are top-level
   functions rather than closures, so a gap query allocates nothing
   beyond the returned [gap] record. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Which store backs one particular set. *)
type buf =
  | Arr of int array
  | Big of ba

type t = {
  mutable buf : buf;  (* quadruples, 4 * count used *)
  mutable count : int;
  mutable bx0 : int;
  mutable by0 : int;
  mutable bx1 : int;
  mutable by1 : int;
}

(* ------------------------------------------------------------------ *)
(* Storage selection                                                   *)

type storage = Heap | Offheap

let storage_of_env () =
  match Sys.getenv_opt "DIC_RECTS_STORAGE" with
  | Some ("offheap" | "bigarray" | "big") -> Offheap
  | _ -> Heap

let current_storage = ref (storage_of_env ())
let storage () = !current_storage
let set_storage s = current_storage := s

let ba_make n : ba = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make_buf n =
  match !current_storage with
  | Heap -> Arr (Array.make n 0)
  | Offheap ->
    let b = ba_make n in
    Bigarray.Array1.fill b 0;
    Big b

let storage_of t = match t.buf with Arr _ -> Heap | Big _ -> Offheap

(* Checked generic accessor for the cold paths; the hot kernels below
   are specialised per backing and use unchecked reads. *)
let[@inline] bget b i =
  match b with Arr a -> a.(i) | Big a -> Bigarray.Array1.get a i

let empty () = { buf = make_buf 0; count = 0; bx0 = 0; by0 = 0; bx1 = 0; by1 = 0 }

let length t = t.count
let is_empty t = t.count = 0

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Rects.get: index out of bounds";
  let o = 4 * i in
  Rect.make (bget t.buf o) (bget t.buf (o + 1)) (bget t.buf (o + 2)) (bget t.buf (o + 3))

let bbox t = if t.count = 0 then None else Some (Rect.make t.bx0 t.by0 t.bx1 t.by1)

(* Insertion sort over quadruples in lexicographic (Rect.compare)
   order.  Sets are per-element geometry (a box, the strips of one wire
   or polygon), so n is small; and the common transform is a
   translation, which keeps the source order and makes this a single
   linear pass.  One copy per backing so neither pays a dispatch in the
   inner shift loop. *)
let sort_quads_arr (d : int array) n =
  for i = 1 to n - 1 do
    let x0 = d.(4 * i)
    and y0 = d.((4 * i) + 1)
    and x1 = d.((4 * i) + 2)
    and y1 = d.((4 * i) + 3) in
    let j = ref (i - 1) in
    let less_than_key j =
      let b = 4 * j in
      let c = Int.compare x0 d.(b) in
      if c <> 0 then c < 0
      else
        let c = Int.compare y0 d.(b + 1) in
        if c <> 0 then c < 0
        else
          let c = Int.compare x1 d.(b + 2) in
          if c <> 0 then c < 0 else y1 < d.(b + 3)
    in
    if less_than_key !j then begin
      while !j >= 0 && less_than_key !j do
        Array.blit d (4 * !j) d (4 * (!j + 1)) 4;
        decr j
      done;
      let o = 4 * (!j + 1) in
      d.(o) <- x0;
      d.(o + 1) <- y0;
      d.(o + 2) <- x1;
      d.(o + 3) <- y1
    end
  done

let sort_quads_big (d : ba) n =
  let open Bigarray.Array1 in
  for i = 1 to n - 1 do
    let x0 = unsafe_get d (4 * i)
    and y0 = unsafe_get d ((4 * i) + 1)
    and x1 = unsafe_get d ((4 * i) + 2)
    and y1 = unsafe_get d ((4 * i) + 3) in
    let j = ref (i - 1) in
    let less_than_key j =
      let b = 4 * j in
      let c = Int.compare x0 (unsafe_get d b) in
      if c <> 0 then c < 0
      else
        let c = Int.compare y0 (unsafe_get d (b + 1)) in
        if c <> 0 then c < 0
        else
          let c = Int.compare x1 (unsafe_get d (b + 2)) in
          if c <> 0 then c < 0 else y1 < unsafe_get d (b + 3)
    in
    if less_than_key !j then begin
      while !j >= 0 && less_than_key !j do
        let s = 4 * !j in
        unsafe_set d (s + 4) (unsafe_get d s);
        unsafe_set d (s + 5) (unsafe_get d (s + 1));
        unsafe_set d (s + 6) (unsafe_get d (s + 2));
        unsafe_set d (s + 7) (unsafe_get d (s + 3));
        decr j
      done;
      let o = 4 * (!j + 1) in
      unsafe_set d o x0;
      unsafe_set d (o + 1) y0;
      unsafe_set d (o + 2) x1;
      unsafe_set d (o + 3) y1
    end
  done

let sort_quads buf n =
  match buf with Arr d -> sort_quads_arr d n | Big d -> sort_quads_big d n

let recompute_bbox t =
  if t.count > 0 then begin
    let d = t.buf in
    let bx0 = ref (bget d 0)
    and by0 = ref (bget d 1)
    and bx1 = ref (bget d 2)
    and by1 = ref (bget d 3) in
    for i = 1 to t.count - 1 do
      let o = 4 * i in
      if bget d o < !bx0 then bx0 := bget d o;
      if bget d (o + 1) < !by0 then by0 := bget d (o + 1);
      if bget d (o + 2) > !bx1 then bx1 := bget d (o + 2);
      if bget d (o + 3) > !by1 then by1 := bget d (o + 3)
    done;
    t.bx0 <- !bx0;
    t.by0 <- !by0;
    t.bx1 <- !bx1;
    t.by1 <- !by1
  end

let of_list rects =
  let n = List.length rects in
  (* Build and sort on the heap, then land in the selected store; this
     path runs once per element at elaboration, not per check. *)
  let d = Array.make (4 * n) 0 in
  List.iteri
    (fun i r ->
      let o = 4 * i in
      d.(o) <- Rect.x0 r;
      d.(o + 1) <- Rect.y0 r;
      d.(o + 2) <- Rect.x1 r;
      d.(o + 3) <- Rect.y1 r)
    rects;
  sort_quads_arr d n;
  let buf =
    match !current_storage with
    | Heap -> Arr d
    | Offheap ->
      let b = ba_make (4 * n) in
      for i = 0 to (4 * n) - 1 do
        Bigarray.Array1.unsafe_set b i d.(i)
      done;
      Big b
  in
  let t = { buf; count = n; bx0 = 0; by0 = 0; bx1 = 0; by1 = 0 } in
  recompute_bbox t;
  t

let to_list t =
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    out := get t i :: !out
  done;
  !out

(* [dst] adopts [src]'s backing, so the specialised kernels below only
   ever see same-store pairs along the transform pipeline. *)
let ensure_capacity_like src dst n =
  let n4 = 4 * n in
  match (src.buf, dst.buf) with
  | Arr _, Arr d when Array.length d >= n4 -> ()
  | Arr _, _ -> dst.buf <- Arr (Array.make n4 0)
  | Big _, Big d when Bigarray.Array1.dim d >= n4 -> ()
  | Big _, _ -> dst.buf <- Big (ba_make n4)

let apply_into tr ~src ~dst =
  ensure_capacity_like src dst src.count;
  dst.count <- src.count;
  (match (src.buf, dst.buf) with
  | Arr s, Arr d ->
    for i = 0 to src.count - 1 do
      let o = 4 * i in
      let px = Transform.apply_x tr s.(o) s.(o + 1)
      and py = Transform.apply_y tr s.(o) s.(o + 1)
      and qx = Transform.apply_x tr s.(o + 2) s.(o + 3)
      and qy = Transform.apply_y tr s.(o + 2) s.(o + 3) in
      d.(o) <- (if px < qx then px else qx);
      d.(o + 1) <- (if py < qy then py else qy);
      d.(o + 2) <- (if px < qx then qx else px);
      d.(o + 3) <- (if py < qy then qy else py)
    done
  | Big s, Big d ->
    let open Bigarray.Array1 in
    for i = 0 to src.count - 1 do
      let o = 4 * i in
      let sx0 = unsafe_get s o
      and sy0 = unsafe_get s (o + 1)
      and sx1 = unsafe_get s (o + 2)
      and sy1 = unsafe_get s (o + 3) in
      let px = Transform.apply_x tr sx0 sy0
      and py = Transform.apply_y tr sx0 sy0
      and qx = Transform.apply_x tr sx1 sy1
      and qy = Transform.apply_y tr sx1 sy1 in
      unsafe_set d o (if px < qx then px else qx);
      unsafe_set d (o + 1) (if py < qy then py else qy);
      unsafe_set d (o + 2) (if px < qx then qx else px);
      unsafe_set d (o + 3) (if py < qy then qy else py)
    done
  | (Arr _ | Big _), _ ->
    (* unreachable: [ensure_capacity_like] matched the stores *)
    assert false);
  sort_quads dst.buf dst.count;
  (* Orthogonal transforms map boxes to boxes: the transformed source
     bbox is exact. *)
  if src.count > 0 then begin
    let px = Transform.apply_x tr src.bx0 src.by0
    and py = Transform.apply_y tr src.bx0 src.by0
    and qx = Transform.apply_x tr src.bx1 src.by1
    and qy = Transform.apply_y tr src.bx1 src.by1 in
    dst.bx0 <- (if px < qx then px else qx);
    dst.by0 <- (if py < qy then py else qy);
    dst.bx1 <- (if px < qx then qx else px);
    dst.by1 <- (if py < qy then qy else py)
  end

let apply tr src =
  let dst = empty () in
  apply_into tr ~src ~dst;
  dst

(* ------------------------------------------------------------------ *)
(* Minimum-gap kernels                                                 *)

type gap = { g2 : int; ai : int; bi : int; overlap : bool }

let no_gap = { g2 = max_int; ai = -1; bi = -1; overlap = false }

(* The sweep's entire mutable state, owned by the caller and reused
   across calls: active-band index arrays plus the best-so-far pair,
   the overlap flag, and the band lengths.  Keeping these here (rather
   than in per-call refs and closures) is what makes a kernel call
   allocation-free — on the PLA workloads the old per-call refs were
   the dominant source of minor-heap churn. *)
type ws = {
  mutable wa : int array;
  mutable wb : int array;
  mutable s_best2 : int;
  mutable s_ai : int;
  mutable s_bi : int;
  mutable s_overlap : bool;
  mutable s_na : int;
  mutable s_nb : int;
}

let make_ws () =
  { wa = [||]; wb = [||]; s_best2 = max_int; s_ai = -1; s_bi = -1; s_overlap = false;
    s_na = 0; s_nb = 0 }

let ensure_ws ws na nb =
  if Array.length ws.wa < na then ws.wa <- Array.make na 0;
  if Array.length ws.wb < nb then ws.wb <- Array.make nb 0

(* The oracle: the checker's original list-of-rects brute force, n*m
   axis gaps with no pruning, kept bit-compatible with the sweep.  The
   pair reported for a tied minimum gap is the (ai, bi)-lexicographically
   first over the sorted arrays; [overlap] is exact.  Deliberately left
   on boxed rectangles (it also serves as the pre-packing cost baseline
   for the [kernel] bench experiment). *)
let gap2_naive ~euclid ~cutoff2 a b =
  if a.count = 0 || b.count = 0 then no_gap
  else begin
    let best = ref no_gap in
    let ra = Array.of_list (to_list a) and rb = Array.of_list (to_list b) in
    Array.iteri
      (fun i xa ->
        Array.iteri
          (fun j xb ->
            let xg = Rect.gap_x xa xb and yg = Rect.gap_y xa xb in
            let ov = !best.overlap || Rect.overlaps ~a:xa ~b:xb in
            let g2 =
              if euclid then (xg * xg) + (yg * yg)
              else
                let m = if xg > yg then xg else yg in
                m * m
            in
            if g2 <= cutoff2 && g2 < !best.g2 then
              best := { g2; ai = i; bi = j; overlap = ov }
            else if ov <> !best.overlap then best := { !best with overlap = ov })
          rb)
      ra;
    !best
  end

(* One pair test of the sweep, shared by every storage specialisation:
   the coordinate loads happen in the drivers, this only judges them
   and updates the state in [ws].  Eviction elsewhere uses a strict
   comparison, so pairs tying the current best survive and the
   (ai, bi)-lexicographic tie-break here returns exactly the pair the
   naive kernel finds.  Overlapping pairs have zero x gap and are never
   evicted, so [overlap] is exact too. *)
let[@inline] consider_pair ws ~euclid ~cutoff2 ai bi ax0 ay0 ax1 ay1 bx0 by0 bx1 by1 =
  let xg =
    let d1 = bx0 - ax1 and d2 = ax0 - bx1 in
    let m = if d1 > d2 then d1 else d2 in
    if m > 0 then m else 0
  in
  let yg =
    let d1 = by0 - ay1 and d2 = ay0 - by1 in
    let m = if d1 > d2 then d1 else d2 in
    if m > 0 then m else 0
  in
  if xg = 0 && yg = 0 && ax0 < bx1 && bx0 < ax1 && ay0 < by1 && by0 < ay1 then
    ws.s_overlap <- true;
  let g2 =
    if euclid then (xg * xg) + (yg * yg)
    else
      let m = if xg > yg then xg else yg in
      m * m
  in
  if g2 <= cutoff2 then
    if
      g2 < ws.s_best2
      || (g2 = ws.s_best2 && (ai < ws.s_ai || (ai = ws.s_ai && bi < ws.s_bi)))
    then begin
      ws.s_best2 <- g2;
      ws.s_ai <- ai;
      ws.s_bi <- bi
    end

(* Evict active rectangles whose x gap to the sweep position [x] (and
   to every later opening, since x0 only grows) already exceeds the
   bound [b2]; returns the compacted band length.  Tail-recursive with
   the cursor in an argument: no ref, no allocation. *)
let rec prune_arr act (d : int array) x b2 i n k =
  if i >= n then k
  else begin
    let ri = Array.unsafe_get act i in
    let dx = x - Array.unsafe_get d ((4 * ri) + 2) in
    if dx <= 0 || dx * dx <= b2 then begin
      Array.unsafe_set act k ri;
      prune_arr act d x b2 (i + 1) n (k + 1)
    end
    else prune_arr act d x b2 (i + 1) n k
  end

let rec prune_big act (d : ba) x b2 i n k =
  if i >= n then k
  else begin
    let ri = Array.unsafe_get act i in
    let dx = x - Bigarray.Array1.unsafe_get d ((4 * ri) + 2) in
    if dx <= 0 || dx * dx <= b2 then begin
      Array.unsafe_set act k ri;
      prune_big act d x b2 (i + 1) n (k + 1)
    end
    else prune_big act d x b2 (i + 1) n k
  end

let rec prune_gen act (d : buf) x b2 i n k =
  if i >= n then k
  else begin
    let ri = Array.unsafe_get act i in
    let dx = x - bget d ((4 * ri) + 2) in
    if dx <= 0 || dx * dx <= b2 then begin
      Array.unsafe_set act k ri;
      prune_gen act d x b2 (i + 1) n (k + 1)
    end
    else prune_gen act d x b2 (i + 1) n k
  end

let[@inline] bound2 ws cutoff2 = if ws.s_best2 < cutoff2 then ws.s_best2 else cutoff2

(* The x-sweep drivers.  Rectangles of both sets are visited in
   ascending x0 (merged); each opening rectangle is compared against
   the other set's active band, pruned against [min best2 cutoff2].
   One driver per backing so the inner loops read flat memory with no
   per-element dispatch; [drive_gen] covers mixed-store pairs (only
   reachable when the storage switch is flipped between builds). *)
let rec drive_arr ~euclid ~cutoff2 ws (da : int array) ca (db : int array) cb ia ib =
  if ia < ca || ib < cb then begin
    let take_a =
      if ib >= cb then true
      else if ia >= ca then false
      else Array.unsafe_get da (4 * ia) <= Array.unsafe_get db (4 * ib)
    in
    if take_a then begin
      let oa = 4 * ia in
      let ax0 = Array.unsafe_get da oa
      and ay0 = Array.unsafe_get da (oa + 1)
      and ax1 = Array.unsafe_get da (oa + 2)
      and ay1 = Array.unsafe_get da (oa + 3) in
      ws.s_nb <- prune_arr ws.wb db ax0 (bound2 ws cutoff2) 0 ws.s_nb 0;
      for j = 0 to ws.s_nb - 1 do
        let bi = Array.unsafe_get ws.wb j in
        let ob = 4 * bi in
        consider_pair ws ~euclid ~cutoff2 ia bi ax0 ay0 ax1 ay1
          (Array.unsafe_get db ob)
          (Array.unsafe_get db (ob + 1))
          (Array.unsafe_get db (ob + 2))
          (Array.unsafe_get db (ob + 3))
      done;
      Array.unsafe_set ws.wa ws.s_na ia;
      ws.s_na <- ws.s_na + 1;
      drive_arr ~euclid ~cutoff2 ws da ca db cb (ia + 1) ib
    end
    else begin
      let ob = 4 * ib in
      let bx0 = Array.unsafe_get db ob
      and by0 = Array.unsafe_get db (ob + 1)
      and bx1 = Array.unsafe_get db (ob + 2)
      and by1 = Array.unsafe_get db (ob + 3) in
      ws.s_na <- prune_arr ws.wa da bx0 (bound2 ws cutoff2) 0 ws.s_na 0;
      for i = 0 to ws.s_na - 1 do
        let ai = Array.unsafe_get ws.wa i in
        let oa = 4 * ai in
        consider_pair ws ~euclid ~cutoff2 ai ib
          (Array.unsafe_get da oa)
          (Array.unsafe_get da (oa + 1))
          (Array.unsafe_get da (oa + 2))
          (Array.unsafe_get da (oa + 3))
          bx0 by0 bx1 by1
      done;
      Array.unsafe_set ws.wb ws.s_nb ib;
      ws.s_nb <- ws.s_nb + 1;
      drive_arr ~euclid ~cutoff2 ws da ca db cb ia (ib + 1)
    end
  end

let rec drive_big ~euclid ~cutoff2 ws (da : ba) ca (db : ba) cb ia ib =
  let open Bigarray.Array1 in
  if ia < ca || ib < cb then begin
    let take_a =
      if ib >= cb then true
      else if ia >= ca then false
      else unsafe_get da (4 * ia) <= unsafe_get db (4 * ib)
    in
    if take_a then begin
      let oa = 4 * ia in
      let ax0 = unsafe_get da oa
      and ay0 = unsafe_get da (oa + 1)
      and ax1 = unsafe_get da (oa + 2)
      and ay1 = unsafe_get da (oa + 3) in
      ws.s_nb <- prune_big ws.wb db ax0 (bound2 ws cutoff2) 0 ws.s_nb 0;
      for j = 0 to ws.s_nb - 1 do
        let bi = Array.unsafe_get ws.wb j in
        let ob = 4 * bi in
        consider_pair ws ~euclid ~cutoff2 ia bi ax0 ay0 ax1 ay1
          (unsafe_get db ob)
          (unsafe_get db (ob + 1))
          (unsafe_get db (ob + 2))
          (unsafe_get db (ob + 3))
      done;
      Array.unsafe_set ws.wa ws.s_na ia;
      ws.s_na <- ws.s_na + 1;
      drive_big ~euclid ~cutoff2 ws da ca db cb (ia + 1) ib
    end
    else begin
      let ob = 4 * ib in
      let bx0 = unsafe_get db ob
      and by0 = unsafe_get db (ob + 1)
      and bx1 = unsafe_get db (ob + 2)
      and by1 = unsafe_get db (ob + 3) in
      ws.s_na <- prune_big ws.wa da bx0 (bound2 ws cutoff2) 0 ws.s_na 0;
      for i = 0 to ws.s_na - 1 do
        let ai = Array.unsafe_get ws.wa i in
        let oa = 4 * ai in
        consider_pair ws ~euclid ~cutoff2 ai ib
          (unsafe_get da oa)
          (unsafe_get da (oa + 1))
          (unsafe_get da (oa + 2))
          (unsafe_get da (oa + 3))
          bx0 by0 bx1 by1
      done;
      Array.unsafe_set ws.wb ws.s_nb ib;
      ws.s_nb <- ws.s_nb + 1;
      drive_big ~euclid ~cutoff2 ws da ca db cb ia (ib + 1)
    end
  end

let rec drive_gen ~euclid ~cutoff2 ws (da : buf) ca (db : buf) cb ia ib =
  if ia < ca || ib < cb then begin
    let take_a =
      if ib >= cb then true
      else if ia >= ca then false
      else bget da (4 * ia) <= bget db (4 * ib)
    in
    if take_a then begin
      let oa = 4 * ia in
      let ax0 = bget da oa
      and ay0 = bget da (oa + 1)
      and ax1 = bget da (oa + 2)
      and ay1 = bget da (oa + 3) in
      ws.s_nb <- prune_gen ws.wb db ax0 (bound2 ws cutoff2) 0 ws.s_nb 0;
      for j = 0 to ws.s_nb - 1 do
        let bi = Array.unsafe_get ws.wb j in
        let ob = 4 * bi in
        consider_pair ws ~euclid ~cutoff2 ia bi ax0 ay0 ax1 ay1 (bget db ob)
          (bget db (ob + 1))
          (bget db (ob + 2))
          (bget db (ob + 3))
      done;
      Array.unsafe_set ws.wa ws.s_na ia;
      ws.s_na <- ws.s_na + 1;
      drive_gen ~euclid ~cutoff2 ws da ca db cb (ia + 1) ib
    end
    else begin
      let ob = 4 * ib in
      let bx0 = bget db ob
      and by0 = bget db (ob + 1)
      and bx1 = bget db (ob + 2)
      and by1 = bget db (ob + 3) in
      ws.s_na <- prune_gen ws.wa da bx0 (bound2 ws cutoff2) 0 ws.s_na 0;
      for i = 0 to ws.s_na - 1 do
        let ai = Array.unsafe_get ws.wa i in
        let oa = 4 * ai in
        consider_pair ws ~euclid ~cutoff2 ai ib (bget da oa)
          (bget da (oa + 1))
          (bget da (oa + 2))
          (bget da (oa + 3))
          bx0 by0 bx1 by1
      done;
      Array.unsafe_set ws.wb ws.s_nb ib;
      ws.s_nb <- ws.s_nb + 1;
      drive_gen ~euclid ~cutoff2 ws da ca db cb ia (ib + 1)
    end
  end

let gap2_sweep ~euclid ~cutoff2 ws a b =
  if a.count = 0 || b.count = 0 then no_gap
  else begin
    ensure_ws ws a.count b.count;
    ws.s_best2 <- max_int;
    ws.s_ai <- -1;
    ws.s_bi <- -1;
    ws.s_overlap <- false;
    ws.s_na <- 0;
    ws.s_nb <- 0;
    (match (a.buf, b.buf) with
    | Arr da, Arr db -> drive_arr ~euclid ~cutoff2 ws da a.count db b.count 0 0
    | Big da, Big db -> drive_big ~euclid ~cutoff2 ws da a.count db b.count 0 0
    | (Arr _ | Big _), _ -> drive_gen ~euclid ~cutoff2 ws a.buf a.count b.buf b.count 0 0);
    if ws.s_ai < 0 then if ws.s_overlap then { no_gap with overlap = true } else no_gap
    else { g2 = ws.s_best2; ai = ws.s_ai; bi = ws.s_bi; overlap = ws.s_overlap }
  end

(* ------------------------------------------------------------------ *)
(* Kernel selection                                                    *)

type kernel = Naive | Sweep

let kernel_of_env () =
  match Sys.getenv_opt "DIC_NAIVE_KERNEL" with
  | None | Some "" | Some "0" -> Sweep
  | Some _ -> Naive

let current = ref (kernel_of_env ())
let kernel () = !current
let set_kernel k = current := k

let gap2 ~euclid ~cutoff2 ws a b =
  match !current with
  | Sweep -> gap2_sweep ~euclid ~cutoff2 ws a b
  | Naive -> gap2_naive ~euclid ~cutoff2 a b

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  for i = 0 to t.count - 1 do
    if i > 0 then Format.fprintf ppf " ";
    Rect.pp ppf (get t i)
  done;
  Format.fprintf ppf "}@]"
