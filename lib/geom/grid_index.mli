(** Uniform-grid spatial index.

    The interaction search (paper Fig 10, "check interactions") needs
    "which elements lie within distance d of this window" queries.  A
    uniform grid hash is ideal for IC layouts: geometry is dense,
    bounded, and uniformly sized. *)

type 'a t

(** [create ~cell ()] — [cell] is the bucket edge length; pick roughly
    the largest interaction distance (a few lambda). *)
val create : cell:int -> unit -> 'a t

val add : 'a t -> Rect.t -> 'a -> unit
val length : 'a t -> int

(** [query t window] — all items whose bounding box touches [window]
    (closed-set test), each exactly once, in insertion order. *)
val query : 'a t -> Rect.t -> (Rect.t * 'a) list

(** [pairs_within t d] — all unordered pairs of items whose bounding
    boxes come within Chebyshev distance [d] (inclusive), each pair
    exactly once.  The pair order is historical (newest item first);
    prefer {!iter_pairs_within}, which has a canonical order and does
    not materialise the pair list. *)
val pairs_within : 'a t -> int -> ((Rect.t * 'a) * (Rect.t * 'a)) list

(** [iter_query t window f] — [f] applied to the items {!query} would
    return, in ascending insertion order, without building the list. *)
val iter_query : 'a t -> Rect.t -> (Rect.t -> 'a -> unit) -> unit

(** [iter_pairs_within t d f] — [f a b] for every pair
    {!pairs_within} would return, in canonical order: [a] ascending by
    insertion, then [b] ascending among the earlier-inserted items
    within distance [d] of [a].  Allocation-light: candidate pairs are
    never materialised as one list. *)
val iter_pairs_within :
  'a t -> int -> (Rect.t * 'a -> Rect.t * 'a -> unit) -> unit

(** Left fold over all items. *)
val fold : ('acc -> Rect.t -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
