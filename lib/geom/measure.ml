type metric = Orthogonal | Euclidean
type kind = Width | Notch | Spacing

type violation = {
  kind : kind;
  metric : metric;
  required : int;
  gap2 : int;
  where : Rect.t;
}

let actual v = sqrt (float_of_int v.gap2)

(* Facing-pair scan shared by width (interior between the edges) and
   notch (exterior between the edges).  For the vertical case we look
   for an edge whose interior faces right paired with one whose interior
   faces left at larger x; [facing_width] selects which inside sides
   constitute the "between is interior" (width) arrangement. *)
let facing_pairs ~(interior_between : bool) ~limit (edges : Edges.t list) orient =
  let sel o = List.filter (fun (e : Edges.t) -> e.Edges.orient = o) edges in
  let es = sel orient in
  let lo_side, hi_side =
    (* For width: left boundary has inside=Hi, right boundary inside=Lo;
       interior lies between (Hi at smaller pos, Lo at larger pos).
       For notch the arrangement is reversed. *)
    if interior_between then (Edges.Hi, Edges.Lo) else (Edges.Lo, Edges.Hi)
  in
  let starts = List.filter (fun (e : Edges.t) -> e.Edges.inside = lo_side) es in
  let stops = List.filter (fun (e : Edges.t) -> e.Edges.inside = hi_side) es in
  List.concat_map
    (fun (a : Edges.t) ->
      List.filter_map
        (fun (b : Edges.t) ->
          let gap = b.Edges.pos - a.Edges.pos in
          let olo = max a.Edges.lo b.Edges.lo and ohi = min a.Edges.hi b.Edges.hi in
          if gap >= 0 && gap < limit && olo < ohi then
            (* Exclude portions shadowed by an intervening edge. *)
            let shadow =
              List.filter_map
                (fun (e : Edges.t) ->
                  if e.Edges.pos > a.Edges.pos && e.Edges.pos < b.Edges.pos then
                    Some { Interval.lo = e.Edges.lo; hi = e.Edges.hi }
                  else None)
                es
              |> Interval.normalise
            in
            let open_spans = Interval.diff [ { Interval.lo = olo; hi = ohi } ] shadow in
            if open_spans = [] then None else Some (a, b, gap, open_spans)
          else None)
        stops)
    starts

let span_rect orient pos0 pos1 (sp : Interval.span) =
  match orient with
  | Edges.V -> Rect.make pos0 sp.Interval.lo pos1 sp.Interval.hi
  | Edges.H -> Rect.make sp.Interval.lo pos0 sp.Interval.hi pos1

let edge_pair_violations ~kind ~metric ~interior_between ~required edges =
  List.concat_map
    (fun orient ->
      facing_pairs ~interior_between ~limit:required edges orient
      |> List.concat_map (fun ((a : Edges.t), _b, gap, spans) ->
             List.map
               (fun sp ->
                 { kind;
                   metric;
                   required;
                   gap2 = gap * gap;
                   where = span_rect orient a.Edges.pos (a.Edges.pos + gap) sp })
               spans))
    [ Edges.V; Edges.H ]

(* Diagonal checks between corners; [want_inside] selects whether the
   midpoint between the corners must be interior (width necks) or
   exterior (spacing across a diagonal gap). *)
let corner_violations ~kind ~metric ~required ~want_convex ~want_inside r =
  let corners =
    List.filter (fun (c : Edges.corner) -> c.Edges.convex = want_convex) (Edges.corners r)
  in
  let lim2 = required * required in
  let rec pairs = function
    | [] -> []
    | (c : Edges.corner) :: rest ->
      List.filter_map
        (fun (d : Edges.corner) ->
          let dx = d.Edges.at.Pt.x - c.Edges.at.Pt.x
          and dy = d.Edges.at.Pt.y - c.Edges.at.Pt.y in
          if dx = 0 || dy = 0 then None
          else
            let g2 = (dx * dx) + (dy * dy) in
            if g2 >= lim2 then None
            else
              let mx = c.Edges.at.Pt.x + (dx / 2) and my = c.Edges.at.Pt.y + (dy / 2) in
              (* Sample the cell just inside the midpoint, biased toward c. *)
              let cell_x = if dx > 0 then mx else mx - 1
              and cell_y = if dy > 0 then my else my - 1 in
              let inside = Region.contains_pt r cell_x cell_y in
              if inside = want_inside then
                Some
                  { kind;
                    metric;
                    required;
                    gap2 = g2;
                    where =
                      Rect.make c.Edges.at.Pt.x c.Edges.at.Pt.y d.Edges.at.Pt.x
                        d.Edges.at.Pt.y }
              else None)
        rest
      @ pairs rest
  in
  pairs corners

let min_width ~metric ~width r =
  let edges = Edges.of_region r in
  let straight =
    edge_pair_violations ~kind:Width ~metric ~interior_between:true ~required:width edges
  in
  match metric with
  | Orthogonal -> straight
  | Euclidean ->
    straight
    @ corner_violations ~kind:Width ~metric ~required:width ~want_convex:false
        ~want_inside:true r

let notch ~metric ~space r =
  let edges = Edges.of_region r in
  let straight =
    edge_pair_violations ~kind:Notch ~metric ~interior_between:false ~required:space edges
  in
  match metric with
  | Orthogonal -> straight
  | Euclidean ->
    straight
    @ corner_violations ~kind:Notch ~metric ~required:space ~want_convex:true
        ~want_inside:false r

let strip_gap2 ~metric ra rb =
  match metric with
  | Orthogonal ->
    let g = Rect.chebyshev_gap ra rb in
    g * g
  | Euclidean -> Rect.euclidean_gap2 ra rb

let spacing ~metric ~space a b =
  let lim2 = space * space in
  List.concat_map
    (fun ra ->
      List.filter_map
        (fun rb ->
          let g2 = strip_gap2 ~metric ra rb in
          if g2 < lim2 then
            Some
              { kind = Spacing; metric; required = space; gap2 = g2; where = Rect.hull ra rb }
          else None)
        (Region.rects b))
    (Region.rects a)

let separation2 ~metric a b =
  let ra = Region.rects a and rb = Region.rects b in
  if ra = [] || rb = [] then None
  else
    let g =
      Rects.gap2
        ~euclid:(metric = Euclidean)
        ~cutoff2:max_int (Rects.make_ws ()) (Rects.of_list ra) (Rects.of_list rb)
    in
    Some g.Rects.g2

let pp_violation ppf v =
  let kind = match v.kind with Width -> "width" | Notch -> "notch" | Spacing -> "spacing" in
  let metric = match v.metric with Orthogonal -> "orth" | Euclidean -> "euclid" in
  Format.fprintf ppf "%s(%s) need %d got %.2f at %a" kind metric v.required (actual v)
    Rect.pp v.where
