(** Width and spacing measurement on rectilinear regions.

    Implements the two geometrical metrics the paper contrasts (Fig 3):
    orthogonal (L-infinity, what an "orthogonal expand" checker
    measures) and Euclidean (L2).  These are the ground-truth
    measurements; the classical *algorithms* built on expand/shrink with
    their corner pathologies (paper Figs 2 and 4) live in [flatdrc] and
    are evaluated against these measurements. *)

type metric = Orthogonal | Euclidean

type kind =
  | Width  (** interior narrower than the rule *)
  | Notch  (** same-region exterior gap narrower than the rule *)
  | Spacing  (** two distinct regions closer than the rule *)

type violation = {
  kind : kind;
  metric : metric;
  required : int;
  gap2 : int;  (** squared measured distance, for both metrics *)
  where : Rect.t;  (** bounding box of the offending gap or neck *)
}

(** Measured distance in plain units. *)
val actual : violation -> float

(** [min_width ~metric ~width r] returns every place the interior of
    [r] is narrower than [width].  The orthogonal metric checks facing
    edge pairs; the Euclidean metric additionally checks diagonal necks
    between concave corners. *)
val min_width : metric:metric -> width:int -> Region.t -> violation list

(** [notch ~metric ~space r] returns every same-region exterior gap
    (notch) narrower than [space]. *)
val notch : metric:metric -> space:int -> Region.t -> violation list

(** [spacing ~metric ~space a b] returns every pair of strips of [a]
    and [b] separated by less than [space].  Touching or overlapping
    geometry reports a gap of zero. *)
val spacing : metric:metric -> space:int -> Region.t -> Region.t -> violation list

(** Exact minimum separation between two regions under a metric, as a
    squared distance; [None] if either region is empty.  Computed by
    the {!Rects} gap kernel (whichever of the sweep or the naive
    oracle is currently selected — they agree exactly). *)
val separation2 : metric:metric -> Region.t -> Region.t -> int option

val pp_violation : Format.formatter -> violation -> unit
