let id_active = 17
let id_blank = 18
let pitch = 14

let nd = Tech.Layer.to_cif Tech.Layer.Diffusion
let np = Tech.Layer.to_cif Tech.Layer.Poly
let nm = Tech.Layer.to_cif Tech.Layer.Metal

(* The through-routing every crosspoint carries: input poly column,
   product metal row, vertical ground diffusion.  Each extends 3 lambda
   past the pitch so neighbours overlap by a full minimum width. *)
let routing ~lambda =
  let l v = v * lambda in
  [ Builder.box ~layer:np (l 2) (l 0) (l 4) (l (pitch + 3));
    Builder.box ~layer:nm (l 0) (l 9) (l (pitch + 3)) (l 12);
    Builder.box ~layer:nd ~net:"GND!" (l 12) (l 0) (l 14) (l (pitch + 3)) ]

let blank ~lambda =
  Builder.symbol ~id:id_blank ~name:"xb" (routing ~lambda) []

let crosspoint ~lambda =
  let l v = v * lambda in
  let h v = v * lambda / 2 in
  Builder.symbol ~id:id_active ~name:"xp"
    (routing ~lambda
    @ [ (* gate feed from the input column *)
        Builder.wire ~layer:np ~width:(l 2) [ (l 3, l 5); (l 5, l 5) ];
        (* drain up to the product line *)
        Builder.wire ~layer:nm ~width:(l 3) [ (l 7, l 9); (l 7, h 23) ];
        (* source over to the ground rail *)
        Builder.wire ~layer:nd ~width:(l 2) [ (l 7, l 2); (l 13, l 2) ] ])
    [ Builder.call ~at:(l 6, l 4) Cells.id_enh;
      Builder.call ~at:(l 6, l 8) Cells.id_con ]

let plane ~lambda program =
  let l v = v * lambda in
  let rows = Array.length program in
  let cols = if rows = 0 then 0 else Array.length program.(0) in
  let calls =
    List.concat
      (List.init rows (fun r ->
           List.init cols (fun c ->
               Builder.call
                 ~at:(c * pitch * lambda, r * pitch * lambda)
                 (if program.(r).(c) then id_active else id_blank))))
  in
  let labels =
    (* Input labels below the columns; product labels left of the rows. *)
    List.init cols (fun c ->
        Builder.wire ~layer:np
          ~net:(Printf.sprintf "in%d" c)
          ~width:(l 2)
          [ ((c * pitch * lambda) + l 3, -l 2); ((c * pitch * lambda) + l 3, l 1) ])
    @ List.init rows (fun r ->
          Builder.wire ~layer:nm
            ~net:(Printf.sprintf "P%d" r)
            ~width:(l 3)
            [ (-l 2, (r * pitch * lambda) + (l 21 / 2));
              (l 2, (r * pitch * lambda) + (l 21 / 2)) ])
  in
  Builder.file
    ~symbols:
      [ Cells.enh ~lambda; Cells.contact_diff ~lambda; crosspoint ~lambda;
        blank ~lambda ]
    ~top_elements:labels ~top_calls:calls ()

let random_program ~rows ~cols ~seed =
  let state = ref (seed land 0x3FFFFFFF) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  Array.init rows (fun _ -> Array.init cols (fun _ -> next () land 1 = 1))

(* The measurement tiers share one seed so every harness (bench, CI
   smoke, tests) means the same plane by "pla-<rows>x<cols>". *)
let tier_seed = 7

let tier ~lambda ~rows ~cols =
  plane ~lambda (random_program ~rows ~cols ~seed:tier_seed)

let million_rect ~lambda = tier ~lambda ~rows:512 ~cols:1024
