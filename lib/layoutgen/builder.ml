let box ~layer ?net x0 y0 x1 y1 =
  Cif.Ast.Box { layer; rect = Geom.Rect.make x0 y0 x1 y1; net; loc = None }

let wire ~layer ?net ~width pts =
  Cif.Ast.Wire
    { layer; width; path = List.map (fun (x, y) -> Geom.Pt.make x y) pts; net; loc = None }

let poly ~layer ?net pts =
  Cif.Ast.Polygon
    { layer; pts = List.map (fun (x, y) -> Geom.Pt.make x y) pts; net; loc = None }

let call ?at ?rot ?mirror callee =
  let ts =
    List.concat
      [ (match mirror with
        | Some `X -> [ Geom.Transform.mirror_x ]
        | Some `Y -> [ Geom.Transform.mirror_y ]
        | None -> []);
        (match rot with Some r -> [ Geom.Transform.rotate r ] | None -> []);
        (match at with Some (x, y) -> [ Geom.Transform.translate x y ] | None -> []) ]
  in
  { Cif.Ast.callee; transform = Geom.Transform.seq ts; call_loc = None }

let symbol ~id ~name ?device elements calls =
  { Cif.Ast.id; name = Some name; device; elements; calls; sym_loc = None }

let file ~symbols ?(top_elements = []) ~top_calls () =
  { Cif.Ast.symbols; top_elements; top_calls; waivers = [] }

let translate_element dx dy e =
  match e with
  | Cif.Ast.Box b -> Cif.Ast.Box { b with rect = Geom.Rect.translate b.rect dx dy }
  | Cif.Ast.Wire w ->
    Cif.Ast.Wire
      { w with path = List.map (fun (p : Geom.Pt.t) -> Geom.Pt.make (p.Geom.Pt.x + dx) (p.Geom.Pt.y + dy)) w.path }
  | Cif.Ast.Polygon p ->
    Cif.Ast.Polygon
      { p with pts = List.map (fun (q : Geom.Pt.t) -> Geom.Pt.make (q.Geom.Pt.x + dx) (q.Geom.Pt.y + dy)) p.pts }
