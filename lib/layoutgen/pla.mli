(** A programmable logic array plane — the regular, structured-VLSI
    workload the paper's hierarchical argument is aimed at.

    The plane is a grid of crosspoint cells.  Each cell carries an
    input column (poly), a product-term row (metal) and a ground rail
    (diffusion, vertical); a *programmed* crosspoint adds a pull-down
    transistor gated by the input column whose drain contacts the
    product line and whose source ties to ground — a distributed NOR.
    Unprogrammed crosspoints route the three wires straight through.

    Symbol ids: 17 [xp] (programmed), 18 [xb] (blank). *)

val id_active : int
val id_blank : int

(** Crosspoint pitch, in lambda (14 in both axes). *)
val pitch : int

val crosspoint : lambda:int -> Cif.Ast.symbol
val blank : lambda:int -> Cif.Ast.symbol

(** [plane ~lambda program] — [program.(row).(col)] places a pull-down
    at that crosspoint.  Input columns are labelled [in<col>], product
    rows [P<row>], ground is [GND!]. *)
val plane : lambda:int -> bool array array -> Cif.Ast.file

(** Deterministic pseudo-random program (linear congruential, seeded) —
    roughly half the crosspoints active. *)
val random_program : rows:int -> cols:int -> seed:int -> bool array array

(** [tier ~lambda ~rows ~cols] is the canonical benchmark plane
    "pla-<rows>x<cols>": a {!random_program} under one fixed seed, so
    bench, CI smoke and tests all mean the same layout by that name. *)
val tier : lambda:int -> rows:int -> cols:int -> Cif.Ast.file

(** The production-scale tier, "pla-512x1024": half a million
    crosspoints, over a million instantiated rectangles. *)
val million_rect : lambda:int -> Cif.Ast.file
