type entry =
  | No_rule
  | Device_checked
  | Space of { same_net : int option; diff_net : int }

let base_entry rules l =
  match l with
  | Layer.Diffusion, Layer.Diffusion ->
    Space { same_net = None; diff_net = rules.Rules.space_diffusion }
  | Layer.Poly, Layer.Poly -> Space { same_net = None; diff_net = rules.Rules.space_poly }
  | Layer.Metal, Layer.Metal -> Space { same_net = None; diff_net = rules.Rules.space_metal }
  | Layer.Contact, Layer.Contact ->
    Space { same_net = None; diff_net = rules.Rules.space_contact }
  | Layer.Diffusion, Layer.Poly ->
    (* Unrelated poly and diffusion must stay apart lest they form an
       accidental transistor; legal crossings happen only inside
       transistor/contact symbols (checked there). *)
    Space { same_net = Some rules.Rules.space_poly_diffusion;
            diff_net = rules.Rules.space_poly_diffusion }
  | Layer.Diffusion, Layer.Metal -> No_rule
  | Layer.Poly, Layer.Metal -> No_rule
  | Layer.Diffusion, Layer.Contact | Layer.Poly, Layer.Contact
  | Layer.Metal, Layer.Contact ->
    Device_checked
  | _ -> No_rule

let entry rules a b =
  let ((lo, hi) as l) = Layer.(if index a <= index b then (a, b) else (b, a)) in
  match base_entry rules l with
  | Space { same_net; _ } as base when not (Layer.equal lo hi) -> (
    (* Directed [space_<a>_<b>] deck overrides apply only to reachable
       cross-layer Space cells; overrides on No_rule / Device_checked
       cells or same-layer cells are inert (Lint codes R006 / R007). *)
    match Rules.cell_space_override rules lo hi with
    | Some d -> Space { same_net = Option.map (fun _ -> d) same_net; diff_net = d }
    | None -> base)
  | base -> base

let cells rules =
  let routing = Layer.routing in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if Layer.index a <= Layer.index b then Some (a, b, entry rules a b) else None)
        routing)
    routing

let pp_entry ppf = function
  | No_rule -> Format.pp_print_string ppf "-"
  | Device_checked -> Format.pp_print_string ppf "dev"
  | Space { same_net; diff_net } ->
    (match same_net with
    | None -> Format.fprintf ppf "same:skip diff:%d" diff_net
    | Some s -> Format.fprintf ppf "same:%d diff:%d" s diff_net)
