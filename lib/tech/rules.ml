type t = {
  name : string;
  lambda : int;
  width_diffusion : int;
  width_poly : int;
  width_metal : int;
  contact_size : int;
  space_diffusion : int;
  space_poly : int;
  space_metal : int;
  space_contact : int;
  space_poly_diffusion : int;
  gate_poly_overhang : int;
  gate_diff_extension : int;
  contact_surround : int;
  implant_gate_surround : int;
  buried_overlap : int;
  pad_metal_surround : int;
  pair_spaces : ((Layer.t * Layer.t) * int) list;
  key_positions : (string * int) list;
  waivers : string list;
}

let nmos ?(lambda = 100) () =
  { name = "nmos-lambda";
    lambda;
    width_diffusion = 2 * lambda;
    width_poly = 2 * lambda;
    width_metal = 3 * lambda;
    contact_size = 2 * lambda;
    space_diffusion = 3 * lambda;
    space_poly = 2 * lambda;
    space_metal = 3 * lambda;
    space_contact = 2 * lambda;
    space_poly_diffusion = lambda;
    gate_poly_overhang = 2 * lambda;
    gate_diff_extension = 2 * lambda;
    contact_surround = lambda;
    implant_gate_surround = 3 * lambda / 2;
    buried_overlap = 2 * lambda;
    pad_metal_surround = 2 * lambda;
    pair_spaces = [];
    key_positions = [];
    waivers = [] }

let position t key = List.assoc_opt key t.key_positions

let min_width t = function
  | Layer.Diffusion -> t.width_diffusion
  | Layer.Poly -> t.width_poly
  | Layer.Metal -> t.width_metal
  | Layer.Contact -> t.contact_size
  | Layer.Implant -> t.width_poly
  | Layer.Buried -> t.contact_size
  | Layer.Glass -> t.contact_size

let skeleton_half t layer = min_width t layer / 2

let same_layer_space t = function
  | Layer.Diffusion -> t.space_diffusion
  | Layer.Poly -> t.space_poly
  | Layer.Metal -> t.space_metal
  | Layer.Contact -> t.space_contact
  | Layer.Implant -> t.space_poly
  | Layer.Buried -> t.space_contact
  | Layer.Glass -> t.space_metal

let cross_layer_space t a b =
  let pair x y = (min (Layer.index x) (Layer.index y), max (Layer.index x) (Layer.index y)) in
  let key = pair a b in
  if key = pair Layer.Poly Layer.Diffusion then Some t.space_poly_diffusion else None

let layer_name = function
  | Layer.Diffusion -> "diffusion"
  | Layer.Poly -> "poly"
  | Layer.Metal -> "metal"
  | Layer.Contact -> "contact"
  | Layer.Implant -> "implant"
  | Layer.Buried -> "buried"
  | Layer.Glass -> "glass"

let layer_of_name s = List.find_opt (fun l -> String.equal (layer_name l) s) Layer.all

let pair_key_name (a, b) = Printf.sprintf "space_%s_%s" (layer_name a) (layer_name b)

let pair_space t a b =
  List.find_map
    (fun ((x, y), v) -> if Layer.equal x a && Layer.equal y b then Some v else None)
    t.pair_spaces

let cell_space_override t a b =
  let lo, hi = if Layer.index a <= Layer.index b then (a, b) else (b, a) in
  match pair_space t lo hi with Some v -> Some v | None -> pair_space t hi lo

let pp ppf t =
  Format.fprintf ppf "%s (lambda=%d)" t.name t.lambda

(* Field table shared by the reader and the writer. *)
let int_fields =
  [ ("width_diffusion", (fun t -> t.width_diffusion), fun t v -> { t with width_diffusion = v });
    ("width_poly", (fun t -> t.width_poly), fun t v -> { t with width_poly = v });
    ("width_metal", (fun t -> t.width_metal), fun t v -> { t with width_metal = v });
    ("contact_size", (fun t -> t.contact_size), fun t v -> { t with contact_size = v });
    ("space_diffusion", (fun t -> t.space_diffusion), fun t v -> { t with space_diffusion = v });
    ("space_poly", (fun t -> t.space_poly), fun t v -> { t with space_poly = v });
    ("space_metal", (fun t -> t.space_metal), fun t v -> { t with space_metal = v });
    ("space_contact", (fun t -> t.space_contact), fun t v -> { t with space_contact = v });
    ("space_poly_diffusion", (fun t -> t.space_poly_diffusion),
     fun t v -> { t with space_poly_diffusion = v });
    ("gate_poly_overhang", (fun t -> t.gate_poly_overhang),
     fun t v -> { t with gate_poly_overhang = v });
    ("gate_diff_extension", (fun t -> t.gate_diff_extension),
     fun t v -> { t with gate_diff_extension = v });
    ("contact_surround", (fun t -> t.contact_surround), fun t v -> { t with contact_surround = v });
    ("implant_gate_surround", (fun t -> t.implant_gate_surround),
     fun t v -> { t with implant_gate_surround = v });
    ("buried_overlap", (fun t -> t.buried_overlap), fun t v -> { t with buried_overlap = v });
    ("pad_metal_surround", (fun t -> t.pad_metal_surround),
     fun t v -> { t with pad_metal_surround = v }) ]

let fields t =
  ("lambda", t.lambda) :: List.map (fun (key, get, _) -> (key, get t)) int_fields

let known_keys = "name" :: "lambda" :: List.map (fun (k, _, _) -> k) int_fields

(* A directed [space_<a>_<b>] key over two layer names.  The canonical
   field names ([space_poly_diffusion], [space_diffusion], ...) are
   matched against [int_fields] first, so this only sees the generic
   directed spellings. *)
let pair_key key =
  match String.split_on_char '_' key with
  | [ "space"; a; b ] -> (
    match (layer_of_name a, layer_of_name b) with
    | Some a, Some b -> Some (a, b)
    | _ -> None)
  | _ -> None

let compare_pair ((a, b), _) ((c, d), _) =
  compare (Layer.index a, Layer.index b) (Layer.index c, Layer.index d)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "name %s\nlambda %d\n" t.name t.lambda);
  List.iter
    (fun (key, get, _) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" key (get t)))
    int_fields;
  List.iter
    (fun (pair, v) ->
      Buffer.add_string buf (Printf.sprintf "%s %d\n" (pair_key_name pair) v))
    (List.sort compare_pair t.pair_spaces);
  Buffer.contents buf

type entry_src = { eline : int; key : string; value : string }

(* [# lint: allow R003] (or a comma/space-separated list of codes) in a
   deck comment suppresses those lint codes for this deck.  Like
   [key_positions], waivers are provenance-adjacent: they never affect
   checking semantics and are not emitted by [to_string], so a waived
   and an unwaived deck share cache entries. *)
let scan_waivers src =
  let codes = ref [] in
  List.iter
    (fun line ->
      match String.index_opt line '#' with
      | None -> ()
      | Some j ->
        let comment =
          String.trim (String.sub line (j + 1) (String.length line - j - 1))
        in
        let accept rest =
          String.split_on_char ',' rest
          |> List.concat_map (String.split_on_char ' ')
          |> List.iter (fun c ->
                 let c = String.trim c in
                 if c <> "" && not (List.mem c !codes) then codes := c :: !codes)
        in
        (match String.index_opt comment ':' with
        | Some k when String.trim (String.sub comment 0 k) = "lint" ->
          let rest =
            String.trim (String.sub comment (k + 1) (String.length comment - k - 1))
          in
          let prefix = "allow" in
          let plen = String.length prefix in
          if
            String.length rest > plen
            && String.sub rest 0 plen = prefix
            && (rest.[plen] = ' ' || rest.[plen] = '\t')
          then accept (String.sub rest plen (String.length rest - plen))
        | _ -> ()))
    (String.split_on_char '\n' src);
  List.sort_uniq compare !codes

let scan src =
  let entries = ref [] and malformed = ref [] in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ k; v ] -> entries := { eline = ln; key = k; value = v } :: !entries
      | _ -> malformed := (ln, String.trim line) :: !malformed)
    (String.split_on_char '\n' src);
  (List.rev !entries, List.rev !malformed)

let of_entries entries =
  let rec find_dup seen = function
    | [] -> None
    | e :: rest -> (
      match List.assoc_opt e.key seen with
      | Some first -> Some (e.eline, e.key, first)
      | None -> find_dup ((e.key, e.eline) :: seen) rest)
  in
  match find_dup [] entries with
  | Some (line, key, first) ->
    Error
      (Printf.sprintf "line %d: duplicate key %S (first defined on line %d)" line key first)
  | None ->
    let int_of ~line key v =
      match int_of_string_opt v with
      | Some n when n > 0 -> Ok n
      | _ ->
        Error (Printf.sprintf "line %d: %s: expected a positive integer, got %S" line key v)
    in
    (* lambda first: it sets the defaults. *)
    let base =
      match List.find_opt (fun e -> e.key = "lambda") entries with
      | None -> Ok (nmos ())
      | Some e -> Result.map (fun lambda -> nmos ~lambda ()) (int_of ~line:e.eline "lambda" e.value)
    in
    Result.map
      (fun t ->
        { t with
          pair_spaces = List.sort compare_pair t.pair_spaces;
          (* Source positions ride along so diagnostics (and SARIF) can
             point at the defining line in this deck; they never affect
             checking semantics or the canonical [to_string] form. *)
          key_positions = List.map (fun e -> (e.key, e.eline)) entries })
      (List.fold_left
         (fun acc e ->
           Result.bind acc (fun t ->
               if e.key = "lambda" then Ok t
               else if e.key = "name" then Ok { t with name = e.value }
               else
                 match List.find_opt (fun (k, _, _) -> k = e.key) int_fields with
                 | Some (_, _, set) -> Result.map (set t) (int_of ~line:e.eline e.key e.value)
                 | None -> (
                   match pair_key e.key with
                   | Some pair ->
                     Result.map
                       (fun v -> { t with pair_spaces = t.pair_spaces @ [ (pair, v) ] })
                       (int_of ~line:e.eline e.key e.value)
                   | None ->
                     Error (Printf.sprintf "line %d: unknown rule key %S" e.eline e.key))))
         base entries)

let of_string src =
  match scan src with
  | _, (line, text) :: _ -> Error (Printf.sprintf "line %d: malformed line: %S" line text)
  | entries, [] ->
    Result.map (fun t -> { t with waivers = scan_waivers src }) (of_entries entries)
