(** The paper's Fig 12 interaction-rule matrix.

    After elements, devices, and connections are checked, "what remains
    to be checked are the interactions between elements and/or
    primitive symbols.  The checks which remain are only spacing
    checks."  The possible cases form an upper-triangular matrix over
    the routing layers (D P M C), each split into same-net and
    different-net subcases.  Most cells need no check: either no rule
    relates the two layers (metal/diffusion) or the only rules concern
    primitive symbols already checked (contact/poly). *)

type entry =
  | No_rule  (** the two layers never interact geometrically *)
  | Device_checked
      (** any legal interaction occurs only inside a primitive symbol,
          which stage 3 has already checked *)
  | Space of {
      same_net : int option;
          (** spacing required even between electrically equivalent
              elements — [None] for ordinary interconnect (Fig 5a), a
              distance when a resistor or similar is involved
              (Fig 5b) *)
      diff_net : int;  (** spacing required between different nets *)
    }

(** [entry rules a b] — symmetric lookup into the matrix.  Directed
    [space_<a>_<b>] overrides from the rule deck
    ({!Rules.cell_space_override}) replace the spacing of reachable
    cross-layer [Space] cells; overrides aimed at [No_rule],
    [Device_checked], or same-layer cells are silently inert — which is
    exactly what the {!Dic.Lint} rule-deck pass flags (codes R005–R007). *)
val entry : Rules.t -> Layer.t -> Layer.t -> entry

(** All upper-triangular (layer, layer, entry) cells over the routing
    layers, for reporting (bench [fig12_matrix_coverage]). *)
val cells : Rules.t -> (Layer.t * Layer.t * entry) list

val pp_entry : Format.formatter -> entry -> unit
