(** Geometric design-rule set.

    The default is a Mead & Conway style lambda rule set for the
    silicon-gate NMOS process (the paper and its examples come from the
    same Caltech design community).  All dimensions are in integer
    layout units; [lambda] sets the scale (default 100 units per
    lambda, i.e. half-micron resolution at lambda = 2.5 um).

    Following the paper's taxonomy, the rules split into: legal-device
    parameters (gate overhang, surrounds), interconnect rules (widths),
    and interaction rules (spacings) — see {!Interaction} for the
    Fig 12 matrix built from these numbers. *)

type t = {
  name : string;
  lambda : int;
  width_diffusion : int;  (** 2 lambda *)
  width_poly : int;  (** 2 lambda *)
  width_metal : int;  (** 3 lambda *)
  contact_size : int;  (** contact cut edge, 2 lambda *)
  space_diffusion : int;  (** 3 lambda *)
  space_poly : int;  (** 2 lambda *)
  space_metal : int;  (** 3 lambda *)
  space_contact : int;  (** 2 lambda *)
  space_poly_diffusion : int;  (** unrelated poly to diffusion, 1 lambda *)
  gate_poly_overhang : int;  (** poly past gate, 2 lambda (Fig 14's rule) *)
  gate_diff_extension : int;  (** diffusion past gate, 2 lambda *)
  contact_surround : int;  (** conductor around a contact cut, 1 lambda *)
  implant_gate_surround : int;  (** implant past depletion gate, 1.5 lambda *)
  buried_overlap : int;  (** buried window past the poly-diff tie, 2 lambda *)
  pad_metal_surround : int;  (** metal past glass opening, 2 lambda *)
  pair_spaces : ((Layer.t * Layer.t) * int) list;
      (** directed cross-layer spacing overrides from [space_<a>_<b>]
          rule-file keys, sorted by layer-index pair.  The checker
          consults them through {!cell_space_override} for reachable
          {!Interaction} matrix cells only; {!Dic.Lint} flags the rest
          (asymmetric, unreachable, or shadowed entries). *)
  key_positions : (string * int) list;
      (** 1-based source line of every [key value] entry when the rule
          set came from {!of_string}/{!of_entries} (file order); [[]]
          for programmatic rule sets.  Provenance only: never part of
          checking semantics, never emitted by {!to_string}, so two
          decks differing only in comments or line layout are the same
          environment. *)
  waivers : string list;
      (** Lint codes waived by [# lint: allow CODE[, CODE...]] deck
          comments, sorted and deduplicated; [[]] for programmatic rule
          sets.  Like [key_positions], provenance only: waivers filter
          reporting downstream but never enter checking semantics or
          {!to_string}. *)
}

(** [nmos ~lambda ()] — the default rule set; [lambda] defaults to
    100. *)
val nmos : ?lambda:int -> unit -> t

(** Minimum legal width of interconnect on a layer. *)
val min_width : t -> Layer.t -> int

(** Half the minimum width, used to erode elements to skeletons. *)
val skeleton_half : t -> Layer.t -> int

(** Minimum spacing between *different-net* geometry on one layer. *)
val same_layer_space : t -> Layer.t -> int

(** Minimum spacing between geometry on two different layers, if any
    rule exists at all ([None] for e.g. metal over diffusion). *)
val cross_layer_space : t -> Layer.t -> Layer.t -> int option

val pp : Format.formatter -> t -> unit

(** {1 Introspection}

    The rule-deck lint ({!Dic.Lint}) walks the rule set generically
    instead of naming fields one by one. *)

(** Every integer rule with its rule-file key, [lambda] first. *)
val fields : t -> (string * int) list

(** All canonical rule-file keys ([name], [lambda], and the integer
    field names) — what {!of_string} accepts besides directed
    [space_<a>_<b>] pair keys. *)
val known_keys : string list

(** Lowercase layer name used in pair keys ("diffusion", "poly", ...) *)
val layer_name : Layer.t -> string

val layer_of_name : string -> Layer.t option

(** Parse a directed [space_<a>_<b>] pair key; [None] if [key] is not
    of that shape (canonical field names are matched first by
    {!of_string}, so e.g. [space_poly_diffusion] never reaches this). *)
val pair_key : string -> (Layer.t * Layer.t) option

(** The directed override exactly as written in the deck, if any. *)
val pair_space : t -> Layer.t -> Layer.t -> int option

(** [position t key] — the 1-based line where [key] was defined, when
    the rule set was loaded from text (see [key_positions]). *)
val position : t -> string -> int option

(** Effective override for the unordered layer pair: the
    ascending-index spelling wins over the descending one.  {!Dic.Lint}
    code [R005] flags decks where the two directions disagree. *)
val cell_space_override : t -> Layer.t -> Layer.t -> int option

(** {1 Rule files}

    A textual rule description so processes are data, not code: one
    [key value] pair per line, [#] comments.  [lambda] (read first)
    sets the defaults for every other key via {!nmos}; explicit keys
    override.  Keys are the record field names, plus [name] and
    directed [space_<a>_<b>] pair overrides.

    {v
    # a coarser process
    lambda 200
    width_metal 800     # wider metal than the default 3 lambda
    v} *)

val to_string : t -> string

(** Strict parse.  Malformed lines, unknown keys, duplicate keys, and
    non-positive values are errors, each reported with its line number
    ("line N: ..."). *)
val of_string : string -> (t, string) result

(** One [key value] line of a rule file, with its 1-based line
    number. *)
type entry_src = { eline : int; key : string; value : string }

(** Tokenize a rule file without interpreting it: the [key value]
    entries in file order, plus the (line, text) of every malformed
    line.  Never fails — the lenient entry point {!Dic.Lint} builds
    its best-effort deck on. *)
val scan : string -> entry_src list * (int * string) list

(** Interpret scanned entries strictly (same errors as
    {!of_string}).  Waiver comments are invisible to [scan]'s entries,
    so rule sets built this way carry no waivers; use {!scan_waivers}
    on the raw source to recover them. *)
val of_entries : entry_src list -> (t, string) result

(** Collect [# lint: allow ...] waiver codes from raw deck text,
    sorted and deduplicated.  Lenient: comments that do not match the
    waiver shape are ignored. *)
val scan_waivers : string -> string list
