(* Benchmark and experiment harness.

   One experiment per figure of the paper (the paper is a systems paper
   whose "evaluation" is its pathology figures and two quantitative
   claims), each printing the rows/series the figure argues from, plus
   Bechamel micro-benchmarks for the two timing claims:

   - T1: hierarchical checking vs flat checking as replication grows;
   - T2: exposure-based spacing (Eq 1) vs the expand-check-overlap
     predicate ("although still slower ... may be feasible").

   Run with: dune exec bench/main.exe *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda
let tolerance = 2 * lambda

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

(* ------------------------------------------------------------------ *)
(* Shared classification helpers                                       *)

(* One cold engine per outcome: the classification experiments compare
   configurations, so nothing may leak between runs.  [configure] is an
   [Engine.with_*] chain. *)
let dic_outcome ?(configure = fun e -> e) truths file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (configure (Dic.Engine.create rules)) file with
  | Error e -> failwith e
  | Ok (result, _) ->
    Dic.Classify.classify ~tolerance truths (Dic.Classify.of_report result.Dic.Engine.report)

let flat_outcome mode truths file =
  Dic.Classify.classify ~tolerance truths
    (Dic.Classify.of_classic (Flatdrc.Classic.check mode rules file))

let flat_orth_ignore =
  { Flatdrc.Classic.default_mode with Flatdrc.Classic.poly_diff = `Ignore }

let flat_orth_flag =
  { Flatdrc.Classic.default_mode with Flatdrc.Classic.poly_diff = `Flag_all }

let flat_euclid_flag =
  { Flatdrc.Classic.metric = Geom.Measure.Euclidean;
    poly_diff = `Flag_all;
    width_algorithm = `Shrink_expand_compare }

let flat_figure_based =
  { Flatdrc.Classic.default_mode with
    Flatdrc.Classic.width_algorithm = `Figure_based }

let print_outcome_row label (o : Dic.Classify.outcome) =
  let ratio = Dic.Classify.false_ratio o in
  Printf.printf "%-36s %8d %8d %8d %12s\n" label
    (List.length o.Dic.Classify.flagged)
    (List.length o.Dic.Classify.missed)
    (List.length o.Dic.Classify.false_findings)
    (if ratio = infinity then "inf" else Printf.sprintf "%.1f" ratio)

let outcome_header () =
  Printf.printf "%-36s %8s %8s %8s %12s\n" "checker" "flagged" "missed" "false"
    "false:real"

(* ------------------------------------------------------------------ *)
(* F1 -- Fig 1: the error Venn diagram                                 *)

let salted_grid nx ny =
  let clean = Layoutgen.Cells.grid ~lambda ~nx ~ny in
  let margin = (nx * Layoutgen.Cells.pitch_x * lambda) + (6 * lambda) in
  Layoutgen.Inject.apply clean
    (Layoutgen.Inject.standard_batch ~lambda ~at:(margin, 0) ~step:(10 * lambda)
    @ [ Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0);
        Layoutgen.Inject.butting_halves ~lambda ~at:(margin, 45 * lambda) ])

let fig01_error_venn () =
  section
    "F1 / Fig 1: real-flagged, real-missed (unchecked), and false errors\n\
     (paper: flat checkers reach 10 false per real error or more;\n\
     the topology-aware checker eliminates most of both)";
  let salted, truths = salted_grid 6 4 in
  outcome_header ();
  print_outcome_row "DIC (hierarchical, net/device aware)" (dic_outcome truths salted);
  print_outcome_row "flat orth, crossings ignored"
    (flat_outcome flat_orth_ignore truths salted);
  print_outcome_row "flat orth, crossings flagged"
    (flat_outcome flat_orth_flag truths salted);
  print_outcome_row "flat euclid, crossings flagged"
    (flat_outcome flat_euclid_flag truths salted)

(* ------------------------------------------------------------------ *)
(* F2 -- Fig 2: figure pathologies                                     *)

let fig02_figure_pathologies () =
  section
    "F2 / Fig 2: figure-based checking\n\
     (left: legal figures, illegal union -- missed; right: illegal\n\
     figures, legal union -- false errors)";
  outcome_header ();
  List.iter
    (fun (kit : Layoutgen.Pathology.kit) ->
      Printf.printf "[%s] %s\n" kit.Layoutgen.Pathology.kit_name
        kit.Layoutgen.Pathology.description;
      print_outcome_row "  DIC"
        (dic_outcome kit.Layoutgen.Pathology.truths kit.Layoutgen.Pathology.file);
      print_outcome_row "  flat figure-based width"
        (flat_outcome flat_figure_based kit.Layoutgen.Pathology.truths
           kit.Layoutgen.Pathology.file);
      print_outcome_row "  flat shrink-expand-compare"
        (flat_outcome flat_orth_ignore kit.Layoutgen.Pathology.truths
           kit.Layoutgen.Pathology.file))
    [ Layoutgen.Pathology.fig2_union_illegal ~lambda;
      Layoutgen.Pathology.fig2_figures_illegal ~lambda ]

(* ------------------------------------------------------------------ *)
(* F3 -- Fig 3: orthogonal vs Euclidean expand and shrink              *)

let fig03_expand_shrink () =
  section
    "F3 / Fig 3: both shrinks keep square corners; the expands differ\n\
     (orthogonal keeps corners, Euclidean rounds them)";
  Printf.printf "%8s %14s %14s %14s %16s\n" "side" "shrink=orth?" "orth-expand"
    "euclid-expand" "corner o/e";
  List.iter
    (fun side ->
      let s = side * lambda in
      let sq = Geom.Region.of_rect (Geom.Rect.make 0 0 s s) in
      let d = lambda in
      let sh_o = Geom.Region.shrink_orth sq d and sh_e = Geom.Region.shrink_euclid sq d in
      let ex_o = Geom.Region.expand_orth sq d and ex_e = Geom.Region.expand_euclid sq d in
      let corner_kept r = Geom.Region.contains_pt r (-d) (-d) in
      Printf.printf "%8d %14b %14d %14d %11b/%b\n" side
        (Geom.Region.equal sh_o sh_e)
        (Geom.Region.area ex_o) (Geom.Region.area ex_e) (corner_kept ex_o)
        (corner_kept ex_e))
    [ 3; 4; 6; 10 ]

(* ------------------------------------------------------------------ *)
(* F4 -- Fig 4: width and spacing pathologies                          *)

let fig04_width_spacing () =
  section
    "F4 / Fig 4: Euclidean shrink-expand-compare errs at every convex\n\
     corner; orthogonal expand-check-overlap errs on corner-to-edge\n\
     spacing (both false, against the exact measurement)";
  let l_shape =
    Layoutgen.Builder.file ~symbols:[]
      ~top_elements:
        [ Layoutgen.Builder.box ~layer:"NM" (0 * lambda) (0 * lambda) (10 * lambda)
            (3 * lambda);
          Layoutgen.Builder.box ~layer:"NM" (0 * lambda) (0 * lambda) (3 * lambda)
            (10 * lambda) ]
      ~top_calls:[] ()
  in
  let count mode =
    List.length
      (List.filter
         (fun (e : Flatdrc.Classic.error) ->
           Dic.Classify.family_of_rule e.Flatdrc.Classic.rule = "width")
         (Flatdrc.Classic.check mode rules l_shape))
  in
  Printf.printf "width checks on a legal L (0 = correct):\n";
  Printf.printf "  orthogonal SEC: %d false error(s)\n" (count flat_orth_ignore);
  Printf.printf "  euclidean  SEC: %d false error(s)  <- corner nibbles\n"
    (count flat_euclid_flag);
  Printf.printf "\nspacing: corner-to-corner, rule = 3 lambda:\n";
  Printf.printf "%18s %16s %16s %16s\n" "offset (dx=dy)" "euclid distance"
    "orth verdict" "euclid verdict";
  List.iter
    (fun off ->
      let file =
        Layoutgen.Builder.file ~symbols:[]
          ~top_elements:
            [ Layoutgen.Builder.box ~layer:"NM" 0 0 (4 * lambda) (4 * lambda);
              Layoutgen.Builder.box ~layer:"NM" ((4 * lambda) + off)
                ((4 * lambda) + off)
                ((8 * lambda) + off)
                ((8 * lambda) + off) ]
          ~top_calls:[] ()
      in
      let flags mode =
        List.exists
          (fun (e : Flatdrc.Classic.error) ->
            Dic.Classify.family_of_rule e.Flatdrc.Classic.rule = "spacing")
          (Flatdrc.Classic.check mode rules file)
      in
      Printf.printf "%18d %16.1f %16s %16s\n" off
        (sqrt (2. *. float_of_int (off * off)))
        (if flags flat_orth_ignore then "FLAG (false)" else "pass")
        (if
           flags { flat_orth_ignore with Flatdrc.Classic.metric = Geom.Measure.Euclidean }
         then "FLAG"
         else "pass"))
    [ 220; 250; 280; 310 ]

(* ------------------------------------------------------------------ *)
(* F5 -- Fig 5: topological pathologies                                *)

let fig05_topological () =
  section
    "F5 / Fig 5: same-net spacing is unnecessary (a) unless a resistor\n\
     is involved (b)";
  outcome_header ();
  let a = Layoutgen.Pathology.fig5_equivalent ~lambda in
  let b = Layoutgen.Pathology.fig5_resistor ~lambda in
  Printf.printf "[fig5a] %s\n" a.Layoutgen.Pathology.description;
  print_outcome_row "  DIC (net aware)"
    (dic_outcome a.Layoutgen.Pathology.truths a.Layoutgen.Pathology.file);
  print_outcome_row "  DIC, net-blind ablation"
    (dic_outcome
       ~configure:(fun e -> Dic.Engine.with_same_net e true)
       a.Layoutgen.Pathology.truths a.Layoutgen.Pathology.file);
  print_outcome_row "  flat (net blind)"
    (flat_outcome flat_orth_ignore a.Layoutgen.Pathology.truths
       a.Layoutgen.Pathology.file);
  Printf.printf "[fig5b] %s\n" b.Layoutgen.Pathology.description;
  print_outcome_row "  DIC (resistor forces the check)"
    (dic_outcome b.Layoutgen.Pathology.truths b.Layoutgen.Pathology.file)

(* ------------------------------------------------------------------ *)
(* F6, F7, F8 -- device-dependent rules                                *)

let device_kit_bench (kit : Layoutgen.Pathology.kit) =
  Printf.printf "[%s] %s\n" kit.Layoutgen.Pathology.kit_name
    kit.Layoutgen.Pathology.description;
  print_outcome_row "  DIC"
    (dic_outcome kit.Layoutgen.Pathology.truths kit.Layoutgen.Pathology.file);
  print_outcome_row "  flat, crossings ignored"
    (flat_outcome flat_orth_ignore kit.Layoutgen.Pathology.truths
       kit.Layoutgen.Pathology.file);
  print_outcome_row "  flat, crossings flagged"
    (flat_outcome flat_orth_flag kit.Layoutgen.Pathology.truths
       kit.Layoutgen.Pathology.file)

let fig06_device_dependent () =
  section "F6 / Fig 6: the same construct, different device, different verdict";
  outcome_header ();
  device_kit_bench (Layoutgen.Pathology.fig6_device_dependent ~lambda)

let fig07_contact_gate () =
  section "F7 / Fig 7: contact over gate vs butting contact";
  outcome_header ();
  device_kit_bench (Layoutgen.Pathology.fig7_contact_gate ~lambda)

let fig08_accidental () =
  section "F8 / Fig 8: intentional vs accidental transistors";
  outcome_header ();
  device_kit_bench (Layoutgen.Pathology.fig8_accidental ~lambda)

(* ------------------------------------------------------------------ *)
(* F9 -- Fig 9: chip structure                                         *)

let fig09_hierarchy () =
  section
    "F9 / Fig 9: chip = blocks + interconnect, down to devices; the\n\
     chip is never fully instantiated";
  Printf.printf "%6s %9s %8s %14s %14s %9s\n" "cells" "symbols" "depth" "def elements"
    "flat elements" "ratio";
  List.iter
    (fun n ->
      let file = Layoutgen.Cells.grid_blocks ~lambda ~nx:n ~ny:n in
      match Dic.Model.elaborate rules file with
      | Error e -> failwith e
      | Ok (model, _) ->
        let de = Dic.Model.definition_elements model
        and fe = Dic.Model.instantiated_elements model in
        Printf.printf "%6d %9d %8d %14d %14d %8.1fx\n" (n * n)
          (Dic.Model.symbol_count model) (Dic.Model.depth model) de fe
          (float_of_int fe /. float_of_int de))
    [ 4; 8; 16; 24 ]

(* ------------------------------------------------------------------ *)
(* F10 -- Fig 10: the pipeline                                         *)

let fig10_pipeline () =
  section "F10 / Fig 10: per-stage cost of the checking pipeline (8x8 grid)";
  let file = Layoutgen.Cells.grid ~lambda ~nx:8 ~ny:8 in
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) file with
  | Error e -> failwith e
  | Ok (result, _) ->
    List.iter
      (fun (name, s) -> Printf.printf "%-24s %8.4f s\n" name s)
      (Dic.Metrics.stage_seconds result.Dic.Engine.metrics);
    Format.printf "result: %a@." Dic.Engine.pp_summary result

(* ------------------------------------------------------------------ *)
(* F11 -- Fig 11: skeletal connectivity                                *)

let fig11_skeletal () =
  section "F11 / Fig 11: skeletal connectivity cases (half-width = 1 lambda)";
  let half = lambda in
  let box x0 y0 x1 y1 =
    [ Geom.Skeleton.of_rect ~half
        (Geom.Rect.make (x0 * lambda) (y0 * lambda) (x1 * lambda) (y1 * lambda)) ]
  in
  let wire pts =
    Geom.Wire.skeleton ~half
      (Geom.Wire.make ~width:(2 * lambda)
         (List.map (fun (x, y) -> Geom.Pt.make (x * lambda) (y * lambda)) pts))
  in
  let cases =
    [ ("boxes overlapping by a full width", box 0 0 4 10, box 0 8 4 18, true);
      ("boxes overlapping by half a width", box 0 0 4 10, box 0 9 4 19, false);
      ("boxes merely abutting (Fig 15)", box 0 0 4 10, box 0 10 4 20, false);
      ("corner-nick overlap", box 0 0 10 10, box 9 9 19 19, false);
      ("wires sharing an endpoint", wire [ (0, 0); (10, 0) ], wire [ (10, 0); (10, 10) ], true);
      ("wire crossing a wire", wire [ (0, 5); (10, 5) ], wire [ (5, 0); (5, 10) ], true) ]
  in
  Printf.printf "%-38s %10s %10s\n" "case" "connected" "expected";
  List.iter
    (fun (name, a, b, expected) ->
      let got = Geom.Skeleton.connected a b in
      Printf.printf "%-38s %10b %10b %s\n" name got expected
        (if got = expected then "" else "  <-- MISMATCH"))
    cases

(* ------------------------------------------------------------------ *)
(* F12 -- Fig 12: the interaction matrix                               *)

let fig12_matrix () =
  section
    "F12 / Fig 12: interaction-rule matrix coverage on an 8x4 grid\n\
     (most cells need no check: no rule, device-checked, or same-net)";
  let file = Layoutgen.Cells.grid ~lambda ~nx:8 ~ny:4 in
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) file with
  | Error e -> failwith e
  | Ok (result, _) ->
    Format.printf "%a@." Dic.Interactions.pp_stats result.Dic.Engine.interaction_stats;
    Printf.printf "\nstatic matrix (rules):\n";
    List.iter
      (fun (a, b, entry) ->
        Format.printf "  %s-%s: %a@." (Tech.Layer.to_cif a) (Tech.Layer.to_cif b)
          Tech.Interaction.pp_entry entry)
      (Tech.Interaction.cells rules)

(* ------------------------------------------------------------------ *)
(* F13 -- Fig 13: proximity expand                                     *)

let fig13_proximity () =
  section
    "F13 / Fig 13: Euclidean, orthogonal and proximity expand\n\
     (areas of a 2-lambda square expanded by 1 lambda; then the gap\n\
     between two boxes under combined exposure)";
  let sigma = 60. in
  let d = lambda in
  let sq = Geom.Region.of_rect (Geom.Rect.make 0 0 (2 * lambda) (2 * lambda)) in
  let threshold = Process_model.Erf.gauss_cdf (-.float_of_int d /. sigma) in
  let model = Process_model.Exposure.make ~sigma ~threshold () in
  let prox = Process_model.Exposure.printed model sq ~step:20 ~margin:(2 * lambda) in
  Printf.printf "areas: drawn=%d orth=%d euclid=%d proximity=%d\n"
    (Geom.Region.area sq)
    (Geom.Region.area (Geom.Region.expand_orth sq d))
    (Geom.Region.area (Geom.Region.expand_euclid sq d))
    (Geom.Region.area prox);
  Printf.printf "\ntwo 3x2-lambda boxes, expand d = 1 lambda; do they print merged?\n";
  Printf.printf "%10s %12s %12s\n" "gap" "isolated" "combined";
  List.iter
    (fun gap ->
      let a = Geom.Rect.make 0 0 (3 * lambda) (2 * lambda) in
      let b = Geom.Rect.make ((3 * lambda) + gap) 0 ((6 * lambda) + gap) (2 * lambda) in
      let comps r = List.length (Geom.Region.components r) in
      let iso =
        comps
          (Geom.Region.union
             (Process_model.Exposure.printed model (Geom.Region.of_rect a) ~step:10
                ~margin:(2 * lambda))
             (Process_model.Exposure.printed model (Geom.Region.of_rect b) ~step:10
                ~margin:(2 * lambda)))
      in
      let com =
        comps
          (Process_model.Exposure.printed model
             (Geom.Region.of_rects [ a; b ])
             ~step:10 ~margin:(2 * lambda))
      in
      Printf.printf "%10d %12s %12s\n" gap
        (if iso = 1 then "merged" else "separate")
        (if com = 1 then "MERGED" else "separate"))
    [ 190; 210; 230; 250; 280 ]

(* ------------------------------------------------------------------ *)
(* F14 -- Fig 14: the relational rule                                  *)

let fig14_relational () =
  section
    "F14 / Fig 14: end-cap retreat vs wire width; fixed 2-lambda\n\
     overhang rule vs the relational check (required effective 1.5)";
  let model = Process_model.Exposure.make ~sigma:60. () in
  Printf.printf "%8s %10s %12s %10s %12s\n" "width" "retreat" "effective" "fixed rule"
    "relational";
  List.iter
    (fun w ->
      let v =
        Process_model.Relational.check_gate_overhang model ~width:w ~drawn:(2 * lambda)
          ~required:(3 * lambda / 2)
      in
      Printf.printf "%8d %10.1f %12.1f %10s %12s\n" w v.Process_model.Relational.retreat
        v.Process_model.Relational.effective "pass"
        (if v.Process_model.Relational.ok then "pass" else "VIOLATION"))
    [ 400; 300; 250; 200; 150; 120; 100 ]

(* ------------------------------------------------------------------ *)
(* F15 -- Fig 15: self-sufficiency                                     *)

let fig15_self_sufficiency () =
  section "F15 / Fig 15: symbol self-sufficiency (butting vs overlap)";
  outcome_header ();
  let kit = Layoutgen.Pathology.fig15_self_sufficiency ~lambda in
  Printf.printf "[%s] %s\n" kit.Layoutgen.Pathology.kit_name
    kit.Layoutgen.Pathology.description;
  print_outcome_row "  DIC"
    (dic_outcome kit.Layoutgen.Pathology.truths kit.Layoutgen.Pathology.file);
  print_outcome_row "  flat"
    (flat_outcome flat_orth_ignore kit.Layoutgen.Pathology.truths
       kit.Layoutgen.Pathology.file)

(* ------------------------------------------------------------------ *)
(* T1 -- runtime scaling                                               *)

let time_once f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let t1_runtime_scaling () =
  section
    "T1: hierarchical vs flat run time as the array grows\n\
     (the hierarchical checker touches each definition once and\n\
     memoises repeated instance pairs)";
  Printf.printf "%8s %12s %12s %12s %10s %14s\n" "cells" "flat rects" "DIC (s)"
    "flat (s)" "speedup" "memo hit rate";
  List.iter
    (fun n ->
      let file = Layoutgen.Cells.grid ~lambda ~nx:n ~ny:n in
      let dic_result, dic_t =
        time_once (fun () ->
            match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) file with
            | Ok (r, _) -> r
            | Error e -> failwith e)
      in
      let flat_errors, flat_t =
        time_once (fun () -> Flatdrc.Classic.check flat_orth_ignore rules file)
      in
      let stats = dic_result.Dic.Engine.interaction_stats in
      let hits = stats.Dic.Interactions.memo_hits
      and misses = stats.Dic.Interactions.memo_misses in
      let rects = Flatdrc.Flatten.rect_count (Flatdrc.Flatten.file file) in
      Printf.printf "%8d %12d %12.3f %12.3f %9.1fx %13.1f%%\n" (n * n) rects dic_t
        flat_t
        (flat_t /. Float.max 1e-9 dic_t)
        (100. *. float_of_int hits /. Float.max 1. (float_of_int (hits + misses)));
      ignore flat_errors)
    [ 2; 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* T3 and ablations                                                    *)

let t3_incremental () =
  section
    "T3: incremental rechecking (edit-check loop)\n\
     (per-definition results cached by structural fingerprint; the\n\
     interaction memo survives for unchanged subtrees)";
  let engine = Dic.Engine.create rules in
  let file = Layoutgen.Cells.grid ~lambda ~nx:12 ~ny:12 in
  let run_inc label f =
    let (_, (reuse : Dic.Engine.reuse)), t =
      time_once (fun () ->
          match Result.map Dic.Engine.primary @@ Dic.Engine.check engine f with Ok r -> r | Error e -> failwith e)
    in
    Printf.printf "%-34s %8.3f s   (%d/%d definitions reused)\n" label t
      reuse.Dic.Engine.symbols_reused reuse.Dic.Engine.symbols_total;
    t
  in
  let cold = run_inc "cold run (12x12 grid)" file in
  let warm = run_inc "unchanged rerun" file in
  let salted, _ =
    Layoutgen.Inject.apply file
      [ Layoutgen.Inject.narrow_poly_wire ~lambda
          ~at:((12 * Layoutgen.Cells.pitch_x * lambda) + (6 * lambda), 0) ]
  in
  let edit = run_inc "after a top-level edit" salted in
  Printf.printf "warm rerun speedup: %.1fx; post-edit speedup: %.1fx\n"
    (cold /. Float.max 1e-9 warm)
    (cold /. Float.max 1e-9 edit)

let ablations () =
  section
    "Ablations: what each source of information buys\n\
     (salted 4x2 grid; flagged / missed / false per configuration)";
  let salted, truths = salted_grid 4 2 in
  outcome_header ();
  print_outcome_row "full checker" (dic_outcome truths salted);
  print_outcome_row "without net awareness"
    (dic_outcome ~configure:(fun e -> Dic.Engine.with_same_net e true) truths salted);
  print_outcome_row "without electrical rules"
    (dic_outcome ~configure:(fun e -> Dic.Engine.with_erc e false) truths salted);
  print_outcome_row "exposure-model spacing"
    (dic_outcome
       ~configure:(fun e ->
         Dic.Engine.with_spacing_model e
           (Dic.Interactions.Exposure
              { model = Process_model.Exposure.make ~sigma:60. (); misalign = 50 }))
       truths salted);
  print_endline
    "(exposure mode judges the injected drawn-rule spacing defects\n\
     printable at sigma=60 and so reports them only if they bridge;\n\
     the geometric rules carry the process margin instead)"

(* ------------------------------------------------------------------ *)
(* P -- Domain-parallel whole-pipeline checking                        *)

(* Wall-clock scaling of a complete [Engine.check] over Domain.spawn —
   element sweeps, device recognition, and the interaction worklist all
   drain the same chunk queue — on the regular workloads the paper's
   hierarchy argument targets, up to the production-size pla-512x1024
   (over a million instantiated rectangles).  Per-stage seconds are
   broken out per point so the serial stages (elaboration, net
   construction) are visibly excluded from any scaling claim.  Writes
   BENCH_parallel.json next to the working directory. *)

let wall f =
  let t0 = Dic.Metrics.now_ns () in
  let v = f () in
  (v, Int64.to_float (Int64.sub (Dic.Metrics.now_ns ()) t0) *. 1e-9)

(* Every BENCH_*.json stamps the host it ran on: a timing is
   meaningless in CI history without the thread count, compiler, and
   OS that produced it. *)
let provenance_fields () =
  Printf.sprintf "\"hardware_threads\":%d,\"ocaml_version\":%S,\"os\":%S"
    (Domain.recommended_domain_count ())
    Sys.ocaml_version Sys.os_type

(* Median of [runs] timed calls after [warmup] discarded warm-up
   call(s) — the warm-up pages in the workload and triggers the one-off
   allocations, the median shrugs off scheduler noise that best-of-N
   systematically understates.  Returns the last run's value. *)
let median_wall ?(warmup = 1) ?(runs = 5) f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let last = ref None in
  let ts =
    List.init runs (fun _ ->
        let v, t = wall f in
        last := Some v;
        t)
  in
  (Option.get !last, List.nth (List.sort compare ts) (runs / 2))

(* Stage seconds as a JSON object, pipeline order preserved. *)
let stages_json stages =
  "{"
  ^ String.concat ","
      (List.map (fun (s, t) -> Printf.sprintf "%S:%.6f" s t) stages)
  ^ "}"

let parallel_scaling () =
  section
    "P: Domain-parallel whole-pipeline checking\n\
     (element, device and interaction sweeps drain one cost-balanced\n\
     chunk queue; the full report is byte-identical at every domain\n\
     count; per-stage seconds come from the run behind each timing)";
  let workloads =
    [ ("shift-register-256", lazy (Layoutgen.Shift.register ~lambda 256), 1, 5);
      ("pla-48x96", lazy (Layoutgen.Pla.tier ~lambda ~rows:48 ~cols:96), 1, 5);
      (* The production-size point: half a million crosspoints, over a
         million instantiated rectangles.  A full cold check is around a
         minute of work, so one run per domain count — the identity
         assertion is on report bytes, not on time. *)
      ("pla-512x1024", lazy (Layoutgen.Pla.million_rect ~lambda), 0, 1) ]
  in
  let job_counts = [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "host: %d hardware thread(s) available" cores;
  if cores = 1 then
    print_string
      " -- speedup is not expected on this host;\ndomains time-slice one core and \
       pay the cross-domain GC synchronisation";
  print_newline ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"experiment\":\"parallel-pipeline-scaling\",%s,\"scaling_meaningful\":%b,\"workloads\":["
       (provenance_fields ()) (cores > 1));
  List.iteri
    (fun wi (name, file, warmup, runs) ->
      if wi > 0 then Buffer.add_string buf ",";
      let file = Lazy.force file in
      let model =
        match Dic.Model.elaborate rules file with
        | Ok (m, _) -> m
        | Error e -> failwith e
      in
      Printf.printf "[%s] %d symbol(s), %d instantiated element(s), %d run(s)\n" name
        (Dic.Model.symbol_count model)
        (Dic.Model.instantiated_elements model)
        runs;
      (* A fresh engine (no cache directory) per run: every timing is a
         cold full pipeline, so stage seconds are comparable across
         domain counts. *)
      let check jobs () =
        let config =
          { Dic.Engine.default_config with
            Dic.Engine.interactions =
              { Dic.Interactions.default_config with Dic.Interactions.jobs } }
        in
        let m = Dic.Metrics.create () in
        match
          Result.map Dic.Engine.primary
          @@ Dic.Engine.check ~metrics:m (Dic.Engine.create ~config rules) file
        with
        | Error e -> failwith e
        | Ok (r, _) ->
          ( Format.asprintf "%a" Dic.Report.pp r.Dic.Engine.report,
            Dic.Metrics.stage_seconds m )
      in
      if cores = 1 then Printf.printf "%8s %12s %12s\n" "jobs" "seconds" "identical"
      else Printf.printf "%8s %12s %10s %12s\n" "jobs" "seconds" "speedup" "identical";
      let reference = ref "" in
      let base = ref 0. in
      let base_stages = ref [] in
      Buffer.add_string buf (Printf.sprintf "{\"name\":\"%s\",\"points\":[" name);
      List.iteri
        (fun ji jobs ->
          if ji > 0 then Buffer.add_string buf ",";
          let (report, stages), med = median_wall ~warmup ~runs (check jobs) in
          if jobs = 1 then begin
            reference := report;
            base := med;
            base_stages := stages
          end;
          let identical = String.equal report !reference in
          (* Per-stage speedup against the jobs=1 stage seconds — the
             scaling story is per stage: elaboration and net
             construction are serial, the three sweeps are not. *)
          let stage_speedup =
            List.filter_map
              (fun (s, t) ->
                match List.assoc_opt s !base_stages with
                | Some b when t > 0. && b > 0. -> Some (s, b /. t)
                | _ -> None)
              stages
          in
          (* On a one-core host the "speedup" would only measure domain
             time-slicing noise; report time and the identity check. *)
          if cores = 1 then begin
            Printf.printf "%8d %12.3f %12b\n" jobs med identical;
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"jobs\":%d,\"seconds\":%.6f,\"identical\":%b,\"stages\":%s}" jobs
                 med identical (stages_json stages))
          end
          else begin
            Printf.printf "%8d %12.3f %9.2fx %12b\n" jobs med (!base /. med) identical;
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"jobs\":%d,\"seconds\":%.6f,\"speedup\":%.3f,\"identical\":%b,\"stages\":%s,\"stage_speedup\":%s}"
                 jobs med (!base /. med) identical (stages_json stages)
                 (stages_json stage_speedup))
          end;
          let big =
            List.filter (fun (_, t) -> t >= 0.01) stages
            |> List.map (fun (s, t) -> Printf.sprintf "%s %.2fs" s t)
          in
          if big <> [] then
            Printf.printf "%8s stages: %s\n" "" (String.concat ", " big))
        job_counts;
      Buffer.add_string buf "]}")
    workloads;
  Buffer.add_string buf "]}";
  Out_channel.with_open_text "BENCH_parallel.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf);
      Out_channel.output_char oc '\n');
  print_endline "wrote BENCH_parallel.json"

(* ------------------------------------------------------------------ *)
(* I -- Persistent incremental rechecking                              *)

(* The engine's on-disk cache across *processes*: each phase below uses
   a brand-new engine over the same cache directory, so the only warmth
   is what Cache persisted.  Cold, warm (identical input), and a recheck
   after a one-symbol top-level edit; writes BENCH_incremental.json. *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let incremental_recheck () =
  section
    "I: persistent incremental rechecking (cold / warm-from-disk / after\n\
     a one-symbol edit; every phase is a fresh engine over the same\n\
     --cache directory, and the warm report must be byte-identical)";
  let cache_dir =
    let base = Filename.temp_file "dic_bench_cache" "" in
    Sys.remove base;
    base
  in
  let workloads =
    [ ("shift-register-256", Layoutgen.Shift.register ~lambda 256);
      ("pla-48x96",
       Layoutgen.Pla.plane ~lambda
         (Layoutgen.Pla.random_program ~rows:48 ~cols:96 ~seed:7)) ]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"experiment\":\"incremental-recheck\",%s,\"workloads\":["
       (provenance_fields ()));
  Printf.printf "%-22s %10s %10s %10s %10s %12s %10s\n" "workload" "cold (s)"
    "warm (s)" "reused" "identical" "edit (s)" "reused";
  List.iteri
    (fun wi (name, file) ->
      if wi > 0 then Buffer.add_string buf ",";
      let dir = Filename.concat cache_dir name in
      let check f =
        let (result, reuse), t =
          wall (fun () ->
              match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create ~cache_dir:dir rules) f with
              | Ok r -> r
              | Error e -> failwith e)
        in
        (Format.asprintf "%a" Dic.Report.pp result.Dic.Engine.report, reuse, t)
      in
      let cold_report, _, cold_t = check file in
      let warm_report, warm_reuse, warm_t = check file in
      let identical = String.equal cold_report warm_report in
      let edited, _ =
        Layoutgen.Inject.apply file
          [ Layoutgen.Inject.narrow_poly_wire ~lambda ~at:(-40 * lambda, -40 * lambda) ]
      in
      let _, edit_reuse, edit_t = check edited in
      Printf.printf "%-22s %10.3f %10.3f %7d/%-3d %9b %12.3f %7d/%-3d\n" name cold_t
        warm_t warm_reuse.Dic.Engine.symbols_reused warm_reuse.Dic.Engine.symbols_total
        identical edit_t edit_reuse.Dic.Engine.symbols_reused
        edit_reuse.Dic.Engine.symbols_total;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cold_s\":%.6f,\"warm_s\":%.6f,\"warm_reused\":%d,\
            \"warm_total\":%d,\"warm_identical\":%b,\"warm_memo_loaded\":%d,\
            \"edit_s\":%.6f,\"edit_reused\":%d}"
           name cold_t warm_t warm_reuse.Dic.Engine.symbols_reused
           warm_reuse.Dic.Engine.symbols_total identical
           warm_reuse.Dic.Engine.memo_loaded edit_t
           edit_reuse.Dic.Engine.symbols_reused))
    workloads;
  Buffer.add_string buf "]}";
  Out_channel.with_open_text "BENCH_incremental.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf);
      Out_channel.output_char oc '\n');
  rm_rf cache_dir;
  print_endline "wrote BENCH_incremental.json"

(* ------------------------------------------------------------------ *)
(* TR -- Tracing overhead                                              *)

(* Cost of the span tracer: disabled (no --trace; every with_span is
   one option match) and enabled (two clock reads and an array store
   per span) against the same workloads as the parallel experiment. *)

let trace_overhead () =
  section
    "TR: span-tracing overhead\n\
     (disabled tracing must be free; enabled, a span is two clock\n\
     reads and one append)";
  let best n f =
    let b = ref infinity in
    for _ = 1 to n do
      let _, t = wall f in
      if t < !b then b := t
    done;
    !b
  in
  Printf.printf "%-26s %12s %12s %10s\n" "workload" "off (s)" "on (s)" "overhead";
  List.iter
    (fun (name, file) ->
      let model =
        match Dic.Model.elaborate rules file with
        | Ok (m, _) -> m
        | Error e -> failwith e
      in
      let nets, _ = Dic.Netgen.build model in
      let off = best 5 (fun () -> Dic.Interactions.check nets) in
      let on_ =
        best 5 (fun () ->
            let tr = Dic.Trace.create () in
            Dic.Interactions.check ~trace:tr nets)
      in
      Printf.printf "%-26s %12.4f %12.4f %+9.2f%%\n" name off on_
        (100. *. (on_ -. off) /. Float.max 1e-9 off))
    [ ("shift-register-256", Layoutgen.Shift.register ~lambda 256);
      ("grid-12x12", Layoutgen.Cells.grid ~lambda ~nx:12 ~ny:12) ];
  (* Whole pipeline, end to end, with the full span set (stages,
     symbols, shards). *)
  let file = Layoutgen.Cells.grid ~lambda ~nx:12 ~ny:12 in
  let run trace () =
    match Result.map Dic.Engine.primary @@ Dic.Engine.check ?trace (Dic.Engine.create rules) file with
    | Ok r -> ignore r
    | Error e -> failwith e
  in
  let off = best 3 (run None) in
  let tr = Dic.Trace.create () in
  let on_ = best 3 (run (Some tr)) in
  Printf.printf "%-26s %12.4f %12.4f %+9.2f%%   (%d spans)\n" "full pipeline (grid-12x12)"
    off on_
    (100. *. (on_ -. off) /. Float.max 1e-9 off)
    (Dic.Trace.length tr)

(* ------------------------------------------------------------------ *)
(* LN -- Static lint overhead                                          *)

(* The lint passes are advertised as linear-ish in the deck and
   hierarchy size, cheap enough to leave on (--lint) for every check.
   Prove it: deck + syntax-tree + model lints on shift-register-1024
   must cost under 5% of a full cold check of the same design, or the
   bench aborts. *)

let lint_overhead () =
  section
    "LN: static lint overhead\n\
     (check_deck + check_ast + check_model must stay under 5% of a\n\
     full cold check on shift-register-1024)";
  let best n f =
    let b = ref infinity in
    for _ = 1 to n do
      let _, t = wall f in
      if t < !b then b := t
    done;
    !b
  in
  let file = Layoutgen.Shift.register ~lambda 1024 in
  let model =
    match Dic.Model.elaborate rules file with
    | Ok (m, _) -> m
    | Error e -> failwith e
  in
  let lint =
    best 5 (fun () ->
        let diags =
          Dic.Lint.check_deck rules @ Dic.Lint.check_ast file
          @ Dic.Lint.check_model model
        in
        if diags <> [] then failwith "shift-register-1024 must lint clean")
  in
  let full =
    best 3 (fun () ->
        match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) file with
        | Ok r -> ignore r
        | Error e -> failwith e)
  in
  let pct = 100. *. lint /. Float.max 1e-9 full in
  Printf.printf "%-26s %12s %12s %10s\n" "workload" "lint (s)" "full (s)" "lint/full";
  Printf.printf "%-26s %12.4f %12.4f %9.2f%%\n" "shift-register-1024" lint full pct;
  if pct >= 5. then
    failwith
      (Printf.sprintf "lint overhead %.2f%% breaches the 5%% budget" pct)

(* ------------------------------------------------------------------ *)
(* K -- Packed-rect gap kernel: sweep vs brute force                   *)

(* A/B of the interaction gap kernels: the production x-sweep over
   packed rectangle arrays against the boxed n*m oracle (which is also
   the pre-packing cost baseline).  Measurements per workload:

   - the kernel proper, as ns/call over the workload's real element
     geometry (round-robin pairing, the checker's own cutoff) — this is
     where "sweep vs naive" is answerable, and [speedup] reports it;
   - the serial interaction stage end to end under each kernel, with
     GC pressure: the sweep kernel runs out of a caller-owned workspace
     and allocates nothing per call, so [sweep_minor_mwords] is the
     number the CI allocation guard watches;
   - the same two measurements with the packed stores moved off-heap
     (Bigarray backing, [Geom.Rects.set_storage Offheap]) — the
     off-heap report must match the heap sweep report byte for byte.

   All reports must be byte-identical -- the bench aborts if not --
   and the warm-vs-cold engine cache identity is re-proven with the
   packed memo payloads.  Writes BENCH_kernel.json. *)

let kernel_bench () =
  section
    "K: gap kernel, sweep vs brute force, heap vs off-heap\n\
     (packed sweep kernel against the boxed n*m oracle, on real element\n\
     geometry and end-to-end serial checking; byte-identical reports)";
  let workloads =
    [ ("shift-register-1024", lazy (Layoutgen.Shift.register ~lambda 1024), 1, 5);
      ("pla-96x192", lazy (Layoutgen.Pla.tier ~lambda ~rows:96 ~cols:192), 1, 5);
      (* Production size: one end-to-end run per (kernel, storage) —
         the interaction stage alone is ~20 s of work per run here. *)
      ("pla-512x1024", lazy (Layoutgen.Pla.million_rect ~lambda), 0, 1) ]
  in
  let dmax =
    List.fold_left max 0
      [ rules.Tech.Rules.space_diffusion; rules.Tech.Rules.space_poly;
        rules.Tech.Rules.space_metal; rules.Tech.Rules.space_contact;
        rules.Tech.Rules.space_poly_diffusion ]
  in
  let render vs = Format.asprintf "%a" Dic.Report.pp { Dic.Report.violations = vs } in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"experiment\":\"gap-kernel\",%s,\"workloads\":["
       (provenance_fields ()));
  Printf.printf "%-22s %10s %10s %8s %10s %10s %10s %14s\n" "workload" "sweep ns"
    "naive ns" "speedup" "stage s(s)" "stage s(n)" "identical" "minor Mw (s/n)";
  let saved = Geom.Rects.kernel () in
  let saved_storage = Geom.Rects.storage () in
  let with_storage st f =
    Geom.Rects.set_storage st;
    Fun.protect ~finally:(fun () -> Geom.Rects.set_storage saved_storage) f
  in
  Fun.protect
    ~finally:(fun () -> Geom.Rects.set_kernel saved)
    (fun () ->
      List.iteri
        (fun wi (name, file, warmup, runs) ->
          if wi > 0 then Buffer.add_string buf ",";
          let file = Lazy.force file in
          let cutoff2 = dmax * dmax in
          let iters = 1_000_000 in
          (* Everything below is re-done per storage backing: [of_list]
             consults the storage switch when the model is elaborated,
             so heap and off-heap numbers come from separately packed
             models checked under that backing end to end. *)
          let under_storage storage =
            with_storage storage (fun () ->
                let model =
                  match Dic.Model.elaborate rules file with
                  | Ok (m, _) -> m
                  | Error e -> failwith e
                in
                (* Kernel ns/call over the design's own element sets. *)
                let sets =
                  List.concat_map
                    (fun (s : Dic.Model.symbol) ->
                      List.map
                        (fun (e : Dic.Model.element) -> e.Dic.Model.packed)
                        s.Dic.Model.elements)
                    model.Dic.Model.symbols
                  |> Array.of_list
                in
                let nsets = Array.length sets in
                let ws = Geom.Rects.make_ws () in
                let ns_per_call f =
                  let loop () =
                    let acc = ref 0 in
                    for k = 0 to iters - 1 do
                      let a = sets.(k mod nsets)
                      and b = sets.((k * 7 + 1) mod nsets) in
                      acc := !acc + (f a b).Geom.Rects.g2
                    done;
                    !acc
                  in
                  let _, med = median_wall loop in
                  med *. 1e9 /. float_of_int iters
                in
                let sweep_ns =
                  ns_per_call (fun a b ->
                      Geom.Rects.gap2_sweep ~euclid:false ~cutoff2 ws a b)
                in
                let naive_ns =
                  if storage <> Geom.Rects.Heap then 0.
                  else
                    ns_per_call (fun a b ->
                        Geom.Rects.gap2_naive ~euclid:false ~cutoff2 a b)
                in
                (* End-to-end serial interaction stage under each kernel. *)
                let nets, _ = Dic.Netgen.build model in
                let measure kernel =
                  Geom.Rects.set_kernel kernel;
                  let g0 = Gc.quick_stat () in
                  let vs, med =
                    median_wall ~warmup ~runs (fun () ->
                        fst (Dic.Interactions.check nets))
                  in
                  let g1 = Gc.quick_stat () in
                  (* warmup + runs checks ran: per-run Mwords. *)
                  let per_run w = w /. float_of_int (warmup + runs) /. 1e6 in
                  ( render vs,
                    med,
                    per_run (g1.Gc.minor_words -. g0.Gc.minor_words),
                    per_run (g1.Gc.major_words -. g0.Gc.major_words) )
                in
                (sweep_ns, naive_ns,
                 List.map measure
                   (if storage = Geom.Rects.Heap then
                      [ Geom.Rects.Sweep; Geom.Rects.Naive ]
                    else [ Geom.Rects.Sweep ])))
          in
          let sweep_ns, naive_ns, heap_measures = under_storage Geom.Rects.Heap in
          let sweep_r, sweep_t, sweep_min, sweep_maj = List.nth heap_measures 0 in
          let naive_r, naive_t, naive_min, naive_maj = List.nth heap_measures 1 in
          let identical = String.equal sweep_r naive_r in
          if not identical then
            failwith (name ^ ": sweep and naive kernel reports differ");
          let off_ns, _, off_measures = under_storage Geom.Rects.Offheap in
          let off_r, off_t, off_min, off_maj = List.hd off_measures in
          let off_identical = String.equal sweep_r off_r in
          if not off_identical then
            failwith (name ^ ": off-heap report differs from heap");
          Printf.printf "%-22s %10.1f %10.1f %7.2fx %10.3f %10.3f %10b %6.1f /%6.1f\n"
            name sweep_ns naive_ns (naive_ns /. sweep_ns) sweep_t naive_t identical
            sweep_min naive_min;
          Printf.printf
            "%-22s %10.1f %10s %8s %10.3f %10s %10b %6.1f\n"
            "  `- off-heap" off_ns "-" "-" off_t "-" off_identical off_min;
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":\"%s\",\"kernel_ns_sweep\":%.1f,\"kernel_ns_naive\":%.1f,\
                \"speedup\":%.3f,\"check_sweep_s\":%.6f,\"check_naive_s\":%.6f,\
                \"check_speedup\":%.3f,\"identical\":%b,\
                \"sweep_minor_mwords\":%.3f,\"naive_minor_mwords\":%.3f,\
                \"sweep_major_mwords\":%.3f,\"naive_major_mwords\":%.3f,\
                \"kernel_ns_sweep_offheap\":%.1f,\"offheap_check_s\":%.6f,\
                \"offheap_minor_mwords\":%.3f,\"offheap_major_mwords\":%.3f,\
                \"offheap_identical\":%b}"
               name sweep_ns naive_ns (naive_ns /. sweep_ns) sweep_t naive_t
               (naive_t /. sweep_t) identical sweep_min naive_min sweep_maj naive_maj
               off_ns off_t off_min off_maj off_identical))
        workloads;
      (* Warm-vs-cold cache identity with the packed memo payloads: a
         fresh engine over a cache directory a previous engine filled
         must replay to the byte-identical report. *)
      Geom.Rects.set_kernel Geom.Rects.Sweep;
      let file = Layoutgen.Shift.register ~lambda 256 in
      let cache_dir =
        let base = Filename.temp_file "dic_bench_kernel" "" in
        Sys.remove base;
        base
      in
      let check () =
        match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create ~cache_dir rules) file with
        | Ok (r, reuse) ->
          (Format.asprintf "%a" Dic.Report.pp r.Dic.Engine.report, reuse)
        | Error e -> failwith e
      in
      let cold, _ = check () in
      let warm, reuse = check () in
      rm_rf cache_dir;
      let cache_identical = String.equal cold warm in
      if not cache_identical then
        failwith "warm-cache report differs from cold with packed memo payloads";
      Printf.printf
        "warm-vs-cold cache identity (shift-register-256): %b (%d/%d reused)\n"
        cache_identical reuse.Dic.Engine.symbols_reused reuse.Dic.Engine.symbols_total;
      Buffer.add_string buf
        (Printf.sprintf "],\"cache_identical\":%b}" cache_identical));
  Out_channel.with_open_text "BENCH_kernel.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf);
      Out_channel.output_char oc '\n');
  print_endline "wrote BENCH_kernel.json"

(* ------------------------------------------------------------------ *)
(* S -- Serve daemon under concurrent clients                          *)

(* Mocked concurrent clients against a real [dicheck serve] Unix-domain
   socket: the daemon runs [Dic.Serve.serve_socket] in its own domain
   with a 4-worker pool over a persistent cache, and each client is a
   domain sending sequential inline-CIF requests over its own
   connection.  Measures sustained requests/sec and p50/p99 per-request
   latency at 1/2/4/8 clients after a warm-up round, and holds every
   reply's report to byte-identity with the one-shot text ([identical]
   in the output).  Writes BENCH_serve.json. *)

let serve_bench () =
  section
    "S: serve daemon under concurrent clients\n\
     (4 worker domains over one Unix socket; each client sends\n\
     sequential requests on its own connection; identical = every\n\
     reply's report matched the one-shot bytes)";
  let src = Cif.Print.to_string (Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:4) in
  let expected =
    match Result.map Dic.Engine.primary @@ Dic.Engine.check_string (Dic.Engine.create rules) src with
    | Ok (result, _) ->
      Format.asprintf "%a@." Dic.Report.pp result.Dic.Engine.report
      ^ Format.asprintf "%a@." Dic.Engine.pp_summary result
    | Error e -> failwith e
  in
  let cache_dir = Filename.temp_file "dic_bench_serve" "" in
  Sys.remove cache_dir;
  let sock_path = Filename.temp_file "dic_bench_sock" "" in
  Sys.remove sock_path;
  let workers = 4 and reqs_per_client = 25 in
  let server = Dic.Serve.create ~workers ~cache_dir rules in
  let srv = Domain.spawn (fun () -> Dic.Serve.serve_socket server ~path:sock_path) in
  let rec await_socket n =
    if not (Sys.file_exists sock_path) then
      if n = 0 then failwith "serve socket never appeared"
      else begin
        Unix.sleepf 0.05;
        await_socket (n - 1)
      end
  in
  await_socket 200;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock_path);
    (fd, Unix.in_channel_of_descr fd)
  in
  let send fd line =
    let s = line ^ "\n" in
    let len = String.length s in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring fd s !off (len - !off)
    done
  in
  let request id =
    Dic.Json.to_string (Dic.Json.Obj [ ("id", Dic.Json.Str id); ("cif", Dic.Json.Str src) ])
  in
  (* One client conversation: [reqs] sequential request/reply round
     trips, returning per-request latencies and the mismatch count. *)
  let run_client name reqs () =
    let fd, ic = connect () in
    let lats = Array.make reqs 0. in
    let mismatches = ref 0 in
    for i = 0 to reqs - 1 do
      let t0 = Dic.Metrics.now_ns () in
      send fd (request (Printf.sprintf "%s-%d" name i));
      (match In_channel.input_line ic with
      | None -> incr mismatches
      | Some line -> (
        match Dic.Json.parse line with
        | Ok v
          when Option.bind (Dic.Json.member "report" v) Dic.Json.str = Some expected ->
          ()
        | _ -> incr mismatches));
      lats.(i) <- Int64.to_float (Int64.sub (Dic.Metrics.now_ns ()) t0) *. 1e-9
    done;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (lats, !mismatches)
  in
  (* Warm-up: populate the cache and every worker's engines so the
     measured rounds compare steady-state service, not cold parses. *)
  ignore (run_client "warm" (2 * workers) ());
  let percentile sorted q =
    sorted.(min (Array.length sorted - 1)
              (int_of_float (q *. float_of_int (Array.length sorted - 1))))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"experiment\":\"serve-concurrency\",\"workers\":%d,%s,\"scaling_meaningful\":%b,\"workload\":\"grid-4x4\",\"requests_per_client\":%d,\"points\":["
       workers
       (provenance_fields ())
       (Domain.recommended_domain_count () > 1)
       reqs_per_client);
  Printf.printf "%8s %9s %9s %9s %9s %9s %9s %10s\n" "clients" "requests" "seconds"
    "rps" "ttfr_ms" "p50_ms" "p99_ms" "identical";
  let all_identical = ref true in
  List.iteri
    (fun i clients ->
      let results, seconds =
        wall (fun () ->
            List.init clients (fun k ->
                Domain.spawn (run_client (Printf.sprintf "c%d" k) reqs_per_client))
            |> List.map Domain.join)
      in
      (* Each client's first round trip pays connection setup and any
         cold worker state: report it as time-to-first-reply (worst
         client) and keep it out of the steady-state percentiles. *)
      let ttfr =
        List.fold_left (fun acc (l, _) -> Float.max acc l.(0)) 0. results
      in
      let lats =
        Array.concat
          (List.map (fun (l, _) -> Array.sub l 1 (Array.length l - 1)) results)
      in
      Array.sort compare lats;
      let total = Array.length lats + List.length results in
      let mismatches = List.fold_left (fun acc (_, m) -> acc + m) 0 results in
      let identical = mismatches = 0 in
      if not identical then all_identical := false;
      let rps = float_of_int total /. seconds in
      let ttfr_ms = ttfr *. 1e3 in
      let p50 = percentile lats 0.5 *. 1e3 and p99 = percentile lats 0.99 *. 1e3 in
      Printf.printf "%8d %9d %9.3f %9.1f %9.2f %9.2f %9.2f %10b\n" clients total
        seconds rps ttfr_ms p50 p99 identical;
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"clients\":%d,\"requests\":%d,\"seconds\":%.6f,\"rps\":%.3f,\"ttfr_ms\":%.4f,\"p50_ms\":%.4f,\"p99_ms\":%.4f,\"identical\":%b}"
           clients total seconds rps ttfr_ms p50 p99 identical))
    [ 1; 2; 4; 8 ];
  Buffer.add_string buf (Printf.sprintf "],\"identical\":%b}" !all_identical);
  (* Graceful teardown: the shutdown handshake drains and flushes, and
     serve_socket removes its socket file on the way out. *)
  let fd, ic = connect () in
  send fd "{\"id\":\"bye\",\"shutdown\":true}";
  ignore (In_channel.input_line ic);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Domain.join srv;
  rm_rf cache_dir;
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf);
      Out_channel.output_char oc '\n');
  print_endline "wrote BENCH_serve.json"

(* ------------------------------------------------------------------ *)
(* TL -- Service telemetry overhead                                    *)

(* The telemetry bar: with the daemon-side telemetry fully on —
   structured event log to a real file, slow-entry threshold at 0
   (every request logs one), per-request trace collection for the
   service timeline, rolling metrics — a round of sequential requests
   through an in-process single-worker pool must cost under 5% more
   than the same round on a quiet hub, or the bench aborts.  And not
   one report byte may differ.  The per-request "trace":true reply
   embedding is measured too but not gated: only requests that ask for
   a span tree in their reply pay for its rendering.  Writes
   BENCH_telemetry.json. *)

let telemetry_overhead () =
  section
    "TL: service telemetry overhead\n\
     (event log + slow entries + trace collection + rolling metrics\n\
     against a quiet hub, same sequential requests, single worker;\n\
     must stay under 5% and leave every report byte unchanged)";
  let best n f =
    let b = ref infinity in
    for _ = 1 to n do
      let _, t = wall f in
      if t < !b then b := t
    done;
    !b
  in
  let src = Cif.Print.to_string (Layoutgen.Cells.grid ~lambda ~nx:6 ~ny:6) in
  let reqs = 50 in
  let request ~traced i =
    Dic.Json.to_string
      (Dic.Json.Obj
         (("id", Dic.Json.Str (Printf.sprintf "r%d" i))
          :: ("cif", Dic.Json.Str src)
          :: (if traced then [ ("trace", Dic.Json.Bool true) ] else [])))
  in
  let round server ~traced sink =
    let lock = Mutex.create () in
    sink := [];
    let conn =
      Dic.Serve.connect server ~reply:(fun line ->
          Mutex.lock lock;
          sink := line :: !sink;
          Mutex.unlock lock)
    in
    for i = 1 to reqs do
      Dic.Serve.submit server conn (request ~traced i)
    done;
    Dic.Serve.drain server
  in
  let reports replies =
    List.rev_map
      (fun line ->
        match Dic.Json.parse line with
        | Ok v ->
          Option.value ~default:"?"
            (Option.bind (Dic.Json.member "report" v) Dic.Json.str)
        | Error _ -> "?")
      replies
    |> List.sort compare
  in
  let event_file = Filename.temp_file "dic_bench_events" ".jsonl" in
  let event_oc = Out_channel.open_text event_file in
  let telemetry =
    Dic.Telemetry.create ~slow_ms:0. ~collect_traces:true
      ~event_sink:(fun line ->
        Out_channel.output_string event_oc line;
        Out_channel.output_char event_oc '\n';
        Out_channel.flush event_oc)
      ()
  in
  let quiet_server = Dic.Serve.create ~workers:1 rules in
  let loud_server = Dic.Serve.create ~workers:1 ~telemetry rules in
  let quiet_replies = ref [] and loud_replies = ref [] in
  (* One unmeasured round per configuration pays the cold
     parse/elaborate and allocator growth (the incremental experiment's
     subject, not this one's); then the two sides alternate round by
     round so scheduler and GC drift hit both equally, and best-of
     drops the noise spikes a 5% gate cannot tolerate. *)
  round quiet_server ~traced:false quiet_replies;
  round loud_server ~traced:false loud_replies;
  let rounds = 15 in
  let quiet_best = ref infinity and loud_best = ref infinity in
  let ratios =
    List.init rounds (fun _ ->
        let _, tq = wall (fun () -> round quiet_server ~traced:false quiet_replies) in
        if tq < !quiet_best then quiet_best := tq;
        let _, tl = wall (fun () -> round loud_server ~traced:false loud_replies) in
        if tl < !loud_best then loud_best := tl;
        tl /. Float.max 1e-9 tq)
  in
  let quiet_s = !quiet_best and loud_s = !loud_best in
  (* The overhead estimate is the median of the per-pair ratios, not
     the ratio of the two minima: a scheduler spike lands on one round
     of one side and throws a min-based ratio either way, while the
     median pair — measured back to back under the same conditions —
     shrugs it off. *)
  let ratio = List.nth (List.sort compare ratios) (rounds / 2) in
  (* Same loud server, but every request also asks for its span tree
     in the reply — the rendering cost a tracing client signs up for. *)
  let embed_replies = ref [] in
  round loud_server ~traced:true embed_replies;
  let embed_s = best 7 (fun () -> round loud_server ~traced:true embed_replies) in
  Dic.Serve.shutdown quiet_server;
  Dic.Serve.shutdown loud_server;
  Out_channel.close event_oc;
  let events =
    In_channel.with_open_text event_file (fun ic ->
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        !n)
  in
  Sys.remove event_file;
  let identical =
    reports !quiet_replies = reports !loud_replies
    && reports !quiet_replies = reports !embed_replies
  in
  let pct = 100. *. (ratio -. 1.) in
  let embed_pct = 100. *. (embed_s -. quiet_s) /. Float.max 1e-9 quiet_s in
  Printf.printf "%-22s %11s %11s %10s %11s %8s %10s\n" "workload" "quiet (s)"
    "loud (s)" "overhead" "embed (s)" "events" "identical";
  Printf.printf "%-22s %11.4f %11.4f %+9.2f%% %11.4f %8d %10b\n"
    (Printf.sprintf "grid-6x6 x%d" reqs) quiet_s loud_s pct embed_s events
    identical;
  Out_channel.with_open_text "BENCH_telemetry.json" (fun oc ->
      Printf.fprintf oc
        "{\"experiment\":\"serve-telemetry-overhead\",%s,\"workload\":\"grid-6x6\",\
         \"requests\":%d,\"quiet_s\":%.6f,\"loud_s\":%.6f,\"overhead_pct\":%.3f,\
         \"embed_s\":%.6f,\"embed_pct\":%.3f,\"events\":%d,\"identical\":%b}\n"
        (provenance_fields ()) reqs quiet_s loud_s pct embed_s embed_pct events
        identical);
  print_endline "wrote BENCH_telemetry.json";
  if not identical then
    failwith "telemetry changed report bytes -- the determinism bar is broken";
  if pct >= 5. then
    failwith
      (Printf.sprintf "telemetry overhead %.2f%% breaches the 5%% budget" pct)

(* ------------------------------------------------------------------ *)
(* T2 and Bechamel micro-benchmarks                                    *)

let bechamel_benches () =
  section
    "Bechamel micro-benchmarks (OLS ns/run)\n\
     T2: exposure-based spacing vs expand-check-overlap predicate";
  let open Bechamel in
  let a = Geom.Region.of_rect (Geom.Rect.make 0 0 (4 * lambda) (2 * lambda)) in
  let b = Geom.Region.of_rect (Geom.Rect.make (5 * lambda) 0 (9 * lambda) (2 * lambda)) in
  let ra = Geom.Rect.make 0 0 (4 * lambda) (2 * lambda)
  and rb = Geom.Rect.make (5 * lambda) 0 (9 * lambda) (2 * lambda) in
  let model = Process_model.Exposure.make ~sigma:60. () in
  let grid4 = Layoutgen.Cells.grid ~lambda ~nx:4 ~ny:4 in
  let kit = Layoutgen.Pathology.fig8_accidental ~lambda in
  let tests =
    Test.make_grouped ~name:"dic" ~fmt:"%s/%s"
      [ Test.make ~name:"t2-expand-overlap-predicate"
          (Staged.stage (fun () -> Geom.Rect.chebyshev_gap ra rb < 3 * lambda));
        Test.make ~name:"t2-exposure-closest-approach"
          (Staged.stage (fun () -> Process_model.Closest.check model ~misalign:0 a b));
        Test.make ~name:"region-union-2"
          (Staged.stage (fun () -> Geom.Region.union a b));
        Test.make ~name:"dic-check-grid4x4"
          (Staged.stage (fun () ->
               match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) grid4 with
               | Ok (r, _) -> r
               | Error e -> failwith e));
        Test.make ~name:"flat-check-grid4x4"
          (Staged.stage (fun () -> Flatdrc.Classic.check flat_orth_ignore rules grid4));
        Test.make ~name:"dic-check-fig8-kit"
          (Staged.stage (fun () ->
               match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) kit.Layoutgen.Pathology.file with
               | Ok (r, _) -> r
               | Error e -> failwith e)) ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name samples ->
      let ols =
        Analyze.OLS.ols ~bootstrap:0 ~r_square:true
          ~responder:(Measure.label Toolkit.Instance.monotonic_clock)
          ~predictors:[| Measure.run |] samples.Benchmark.lr
      in
      Hashtbl.replace results name ols)
    raw;
  Printf.printf "%-34s %16s %10s\n" "benchmark" "ns/run" "r^2";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)
  |> List.iter (fun (name, ols) ->
         let est = match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan in
         let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
         Printf.printf "%-34s %16.1f %10.4f\n" name est r2);
  let find k = Hashtbl.find_opt results k in
  match (find "dic/t2-exposure-closest-approach", find "dic/t2-expand-overlap-predicate") with
  | Some slow, Some fast -> (
    match (Analyze.OLS.estimates slow, Analyze.OLS.estimates fast) with
    | Some [ s ], Some [ f ] when f > 0. ->
      Printf.printf
        "\nT2: exposure-based spacing is %.0fx slower than the expand-overlap\n\
         predicate -- 'still slower ... but more correct and may be feasible'.\n"
        (s /. f)
    | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* M -- Multi-deck checking in one elaboration                         *)

(* The deck-set engine's economy claim: checking one design under N
   rule decks shares the parse, elaboration, packed geometry, nets, and
   (for decks agreeing on max_dist) the interaction worklist; only rule
   evaluation runs N times.  Measured against the baseline of N
   independent single-deck runs, cold and warm, with the per-deck
   reports asserted byte-identical between the two shapes.  Writes
   BENCH_multideck.json. *)
let multideck_bench () =
  section
    "M: Multi-deck checking in one elaboration\n\
     (three spacing variants of the NMOS deck over pla-48x96; one\n\
     deck-set engine vs three independent engines, cold and warm;\n\
     median of five runs after a warm-up)";
  let file =
    Layoutgen.Pla.plane ~lambda (Layoutgen.Pla.random_program ~rows:48 ~cols:96 ~seed:7)
  in
  (* Spacing variants below space_diffusion, so every deck has the same
     max_dist and the set shares one interaction plan and memo. *)
  let deck sp =
    let name = Printf.sprintf "sp%d" sp in
    Dic.Engine.deck ~label:name
      { rules with Tech.Rules.space_poly = sp; Tech.Rules.name = name }
  in
  let decks = List.map deck [ 200; 220; 240 ] in
  let n = List.length decks in
  let report_text (result : Dic.Engine.result) =
    Format.asprintf "%a@." Dic.Report.pp result.Dic.Engine.report
  in
  let run_independent engines =
    List.map
      (fun e ->
        match Result.map Dic.Engine.primary @@ Dic.Engine.check e file with
        | Ok (r, _) -> report_text r
        | Error e -> failwith e)
      engines
  in
  let run_set engine =
    match Dic.Engine.check engine file with
    | Ok m ->
      List.map
        (fun (dr : Dic.Engine.deck_result) -> report_text dr.Dic.Engine.dr_result)
        m.Dic.Engine.results
    | Error e -> failwith e
  in
  let fresh_independent () =
    List.map (fun (d : Dic.Engine.deck) -> Dic.Engine.create d.Dic.Engine.dk_rules) decks
  in
  let fresh_set () =
    Dic.Engine.create ~decks (List.hd decks).Dic.Engine.dk_rules
  in
  (* Cold: engine construction inside the timed region — every run
     starts from nothing. *)
  let ind_cold_reports, ind_cold =
    median_wall (fun () -> run_independent (fresh_independent ()))
  in
  let set_cold_reports, set_cold = median_wall (fun () -> run_set (fresh_set ())) in
  let cold_identical = ind_cold_reports = set_cold_reports in
  (* Warm: long-lived engines, the serve shape.  median_wall's warm-up
     run fills the sessions before anything is timed. *)
  let ind_engines = fresh_independent () in
  let set_engine = fresh_set () in
  let ind_warm_reports, ind_warm =
    median_wall (fun () -> run_independent ind_engines)
  in
  let set_warm_reports, set_warm = median_wall (fun () -> run_set set_engine) in
  let warm_identical =
    ind_warm_reports = set_warm_reports
    && ind_warm_reports = ind_cold_reports
  in
  let speedup_cold = ind_cold /. set_cold in
  let speedup_warm = ind_warm /. set_warm in
  Printf.printf "%-6s %14s %12s %10s %12s\n" "phase" "independent_s" "deckset_s"
    "speedup" "identical";
  Printf.printf "%-6s %14.3f %12.3f %9.2fx %12b\n" "cold" ind_cold set_cold
    speedup_cold cold_identical;
  Printf.printf "%-6s %14.3f %12.3f %9.2fx %12b\n" "warm" ind_warm set_warm
    speedup_warm warm_identical;
  if not (cold_identical && warm_identical) then
    print_endline "WARNING: deck-set reports diverged from independent runs";
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"experiment\":\"multideck\",%s,\"workload\":\"pla-48x96\",\"decks\":%d,\
        \"cold\":{\"independent_s\":%.6f,\"deckset_s\":%.6f,\"speedup\":%.3f,\
        \"identical\":%b},\
        \"warm\":{\"independent_s\":%.6f,\"deckset_s\":%.6f,\"speedup\":%.3f,\
        \"identical\":%b}}"
       (provenance_fields ()) n ind_cold set_cold speedup_cold cold_identical
       ind_warm set_warm speedup_warm warm_identical);
  Out_channel.with_open_text "BENCH_multideck.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf);
      Out_channel.output_char oc '\n');
  print_endline "wrote BENCH_multideck.json"

(* ------------------------------------------------------------------ *)
(* DC -- Deck semantic analysis + certificate pruning                  *)

(* Two claims, both gated:

   - the constraint-graph closure over a deck (R012+ derivations,
     {!Dic.Deckcheck.check_deck}) is a micro-cost — microseconds per
     deck, so `lint` and `serve` can run it on every request;
   - the static immunity certificates prune a nonzero fraction of rule
     evaluations on the replicated PLA workloads while the analysis
     itself (certify + guard prepass) stays under 5% of check time,
     and the pruned report is byte-identical to the unpruned one
     (DIC_NO_CERTS).  Writes BENCH_deckcheck.json. *)

let deckcheck_bench () =
  section
    "DC: deck constraint-graph analysis and certificate pruning\n\
     (closure micro-cost per deck; certificate-pruned checks must be\n\
     byte-identical to unpruned, skip a nonzero fraction of rule\n\
     evaluations, and keep analysis cost under 5% of check time)";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{%s,\"decks\":[" (provenance_fields ()));
  let contradictory_src =
    "name contradictory\nlambda 100\npad_metal_surround 40\nwidth_poly 200\n\
     space_diffusion_poly 80\nspace_poly_diffusion 150\n"
  in
  let decks =
    [ ("builtin-nmos", rules);
      ("contradictory",
       match Tech.Rules.of_string contradictory_src with
       | Ok r -> r
       | Error e -> failwith e) ]
  in
  Printf.printf "%-18s %14s %8s\n" "deck" "closure (us)" "diags";
  let first = ref true in
  List.iter
    (fun (name, r) ->
      let diags = ref [] in
      let _, t =
        wall (fun () ->
            for _ = 1 to 1000 do
              diags := Dic.Deckcheck.check_deck r
            done)
      in
      let us = t /. 1000. *. 1e6 in
      Printf.printf "%-18s %14.2f %8d\n" name us (List.length !diags);
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "{\"deck\":%S,\"closure_us\":%.3f,\"diags\":%d}" name us
           (List.length !diags)))
    decks;
  Buffer.add_string buf "],\"workloads\":[";
  let check_once ~certs file =
    let saved = Dic.Deckcheck.enabled () in
    Dic.Deckcheck.set_enabled certs;
    Fun.protect
      ~finally:(fun () -> Dic.Deckcheck.set_enabled saved)
      (fun () ->
        let m = Dic.Metrics.create () in
        let bytes_, t =
          wall (fun () ->
              match
                Result.map Dic.Engine.primary
                @@ Dic.Engine.check ~metrics:m (Dic.Engine.create rules) file
              with
              | Ok (r, _) ->
                Format.asprintf "%a@." Dic.Report.pp r.Dic.Engine.report
                ^ Format.asprintf "%a@." Dic.Engine.pp_summary r
              | Error e -> failwith e)
        in
        (bytes_, t, m))
  in
  let workloads =
    [ ("pla-48x96", lazy (Layoutgen.Pla.tier ~lambda ~rows:48 ~cols:96));
      ("pla-96x192", lazy (Layoutgen.Pla.tier ~lambda ~rows:96 ~cols:192)) ]
  in
  Printf.printf "\n%-14s %9s %9s %9s %11s %10s %9s\n" "workload" "on (s)"
    "off (s)" "skips" "evals-cut" "analysis" "identical";
  let first = ref true in
  List.iter
    (fun (name, file) ->
      let file = Lazy.force file in
      let on_bytes, t_on, m_on = check_once ~certs:true file in
      let off_bytes, t_off, m_off = check_once ~certs:false file in
      let identical = on_bytes = off_bytes in
      let skips = Dic.Metrics.counter m_on "analysis.certified_skips" in
      let pairs_on = Dic.Metrics.counter m_on "interactions.pairs" in
      let pairs_off = Dic.Metrics.counter m_off "interactions.pairs" in
      let evals_cut =
        if pairs_off > 0 then
          1. -. (float_of_int pairs_on /. float_of_int pairs_off)
        else 0.
      in
      let certify_s =
        Int64.to_float (Dic.Metrics.cost_ns m_on "analysis.certify") *. 1e-9
      in
      let guard_s =
        Int64.to_float (Dic.Metrics.cost_ns m_on "analysis.guard") *. 1e-9
      in
      let analysis_s = certify_s +. guard_s in
      let overhead_pct = 100. *. analysis_s /. Float.max 1e-9 t_on in
      Printf.printf
        "%-14s %9.3f %9.3f %9d %10.1f%% %9.2f%% %9b  (certify %.1fms, guard %.1fms)\n"
        name t_on t_off skips (100. *. evals_cut) overhead_pct identical
        (certify_s *. 1e3) (guard_s *. 1e3);
      if not !first then Buffer.add_string buf ",";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"workload\":%S,\"seconds_on\":%.6f,\"seconds_off\":%.6f,\
            \"identical\":%b,\"certified_skips\":%d,\"pairs_on\":%d,\
            \"pairs_off\":%d,\"eval_skip_fraction\":%.4f,\
            \"analysis_seconds\":%.6f,\"analysis_overhead_pct\":%.3f}"
           name t_on t_off identical skips pairs_on pairs_off evals_cut
           analysis_s overhead_pct);
      if not identical then
        failwith (name ^ ": certificate-pruned report differs from unpruned");
      if skips = 0 then
        failwith (name ^ ": certificates pruned nothing on a PLA tier");
      if overhead_pct >= 5. then
        failwith
          (Printf.sprintf "%s: analysis overhead %.2f%% breaches the 5%% budget"
             name overhead_pct))
    workloads;
  Buffer.add_string buf "]}";
  Out_channel.with_open_text "BENCH_deckcheck.json" (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf);
      Out_channel.output_char oc '\n');
  print_endline "wrote BENCH_deckcheck.json"

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig1", fig01_error_venn); ("fig2", fig02_figure_pathologies);
    ("fig3", fig03_expand_shrink); ("fig4", fig04_width_spacing);
    ("fig5", fig05_topological); ("fig6", fig06_device_dependent);
    ("fig7", fig07_contact_gate); ("fig8", fig08_accidental);
    ("fig9", fig09_hierarchy); ("fig10", fig10_pipeline);
    ("fig11", fig11_skeletal); ("fig12", fig12_matrix);
    ("fig13", fig13_proximity); ("fig14", fig14_relational);
    ("fig15", fig15_self_sufficiency); ("t1", t1_runtime_scaling);
    ("t3", t3_incremental); ("ablations", ablations);
    ("parallel", parallel_scaling); ("incremental", incremental_recheck);
    ("trace-overhead", trace_overhead); ("lint-overhead", lint_overhead);
    ("kernel", kernel_bench); ("serve", serve_bench);
    ("telemetry", telemetry_overhead); ("multideck", multideck_bench);
    ("deckcheck", deckcheck_bench); ("bechamel", bechamel_benches) ]

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as picks) ->
    List.iter
      (fun pick ->
        match List.assoc_opt pick experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" pick
            (String.concat " " (List.map fst experiments));
          exit 2)
      picks
  | _ ->
    List.iter (fun (_, f) -> f ()) experiments;
    print_endline "\nAll experiments complete."
