(* A structured-VLSI workload: a hierarchically composed array of
   inverter cells (chip -> block -> row -> cell -> device, the paper's
   Fig 9 structure), checked hierarchically, then salted with known
   defects and checked by both the hierarchical checker and the flat
   baseline.

   Run with: dune exec examples/inverter_array.exe *)

let () =
  let rules = Tech.Rules.nmos () in
  let lambda = rules.Tech.Rules.lambda in
  let nx = 8 and ny = 4 in
  let clean = Layoutgen.Cells.grid_blocks ~lambda ~nx ~ny in

  (* --- hierarchy statistics (paper Fig 9) --- *)
  (match Dic.Model.elaborate rules clean with
  | Error e -> failwith e
  | Ok (model, _) ->
    Printf.printf "--- hierarchy (Fig 9) ---\n";
    Printf.printf "symbols defined:        %d\n" (Dic.Model.symbol_count model);
    Printf.printf "call depth:             %d\n" (Dic.Model.depth model);
    Printf.printf "elements in definitions:%6d\n" (Dic.Model.definition_elements model);
    Printf.printf "elements if flattened:  %6d\n\n" (Dic.Model.instantiated_elements model));

  (* One engine for both runs: the salted check reuses every cell
     definition the clean check already verified. *)
  let engine = Dic.Engine.create rules in

  (* --- clean run --- *)
  (match Result.map Dic.Engine.primary @@ Dic.Engine.check engine clean with
  | Error e -> failwith e
  | Ok (result, _) ->
    Printf.printf "--- clean array (%dx%d cells) ---\n" nx ny;
    Format.printf "%a@." Dic.Engine.pp_summary result;
    let local, crossing = Dic.Netgen.locality result.Dic.Engine.nets in
    Printf.printf "net locality: %d local / %d crossing\n" local crossing;
    Format.printf "memoisation: %a@.@."
      (fun ppf (s : Dic.Interactions.stats) ->
        Format.fprintf ppf "%d hits / %d misses" s.Dic.Interactions.memo_hits
          s.Dic.Interactions.memo_misses)
      result.Dic.Engine.interaction_stats);

  (* --- salted run: known defects, both checkers --- *)
  let margin_x = (nx * Layoutgen.Cells.pitch_x * lambda) + (6 * lambda) in
  let injections =
    Layoutgen.Inject.standard_batch ~lambda ~at:(margin_x, 0) ~step:(10 * lambda)
    @ [ Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0);
        Layoutgen.Inject.butting_halves ~lambda
          ~at:(margin_x, 45 * lambda) ]
  in
  let salted, truths = Layoutgen.Inject.apply clean injections in
  let tolerance = 2 * lambda in
  (match Result.map Dic.Engine.primary @@ Dic.Engine.check engine salted with
  | Error e -> failwith e
  | Ok (result, reuse) ->
    Printf.printf "(reused %d/%d definitions from the clean run)\n"
      reuse.Dic.Engine.symbols_reused reuse.Dic.Engine.symbols_total;
    let findings = Dic.Classify.of_report result.Dic.Engine.report in
    let outcome = Dic.Classify.classify ~tolerance truths findings in
    Format.printf "--- salted array: hierarchical checker ---@.%a@."
      Dic.Classify.pp_outcome outcome;
    List.iter
      (fun (t : Dic.Classify.truth) -> Printf.printf "  missed: %s\n" t.Dic.Classify.t_note)
      outcome.Dic.Classify.missed;
    List.iter
      (fun (f : Dic.Classify.finding) -> Printf.printf "  false:  %s\n" f.Dic.Classify.f_note)
      outcome.Dic.Classify.false_findings);
  List.iter
    (fun (mode_name, mode) ->
      let errors = Flatdrc.Classic.check mode rules salted in
      let outcome =
        Dic.Classify.classify ~tolerance truths (Dic.Classify.of_classic errors)
      in
      Format.printf "--- salted array: flat baseline (%s) ---@.%a  (false:real %.1f)@."
        mode_name Dic.Classify.pp_outcome outcome
        (Dic.Classify.false_ratio outcome))
    [ ("orthogonal, crossings ignored",
       { Flatdrc.Classic.default_mode with Flatdrc.Classic.poly_diff = `Ignore });
      ("orthogonal, crossings flagged",
       { Flatdrc.Classic.default_mode with Flatdrc.Classic.poly_diff = `Flag_all });
      ("euclidean, crossings flagged",
       { Flatdrc.Classic.metric = Geom.Measure.Euclidean;
         poly_diff = `Flag_all;
         width_algorithm = `Shrink_expand_compare }) ]
