(* A two-phase NMOS dynamic shift register, checked geometrically and
   then verified against an intended net list — the paper's "check the
   net list against an input net list for consistency".

   Run with: dune exec examples/shift_register.exe *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

let () =
  let bits = 4 in
  let design = Layoutgen.Shift.register ~lambda bits in

  (* One engine session for the whole walkthrough: the geometric model
     is shared, only the expected net list changes between runs. *)
  let engine = Dic.Engine.create rules in

  (* Geometric + electrical check. *)
  (match Result.map Dic.Engine.primary @@ Dic.Engine.check engine design with
  | Error e -> failwith e
  | Ok (result, _) ->
    Format.printf "--- %d-bit shift register ---@.%a@." bits Dic.Engine.pp_summary result;
    Format.printf "clock nets merge globally:@.";
    List.iter
      (fun name ->
        match Netlist.Net.find_by_name result.Dic.Engine.netlist name with
        | Some net ->
          Format.printf "  %s: %d pass-gate terminal(s)@." name
            (List.length net.Netlist.Net.terminals)
        | None -> Format.printf "  %s: MISSING@." name)
      [ "PHI1!"; "PHI2!" ]);

  (* Net-list consistency: the first bit's first pass transistor must
     gate on PHI1 and feed the first inverter. *)
  let expected_src =
    "# intended connectivity of bit 0, stage 1\n\
     net PHI1!\n\
     0:sbit.0:pass_PHI1.1:enhh gate\n\
     net PHI2!\n\
     0:sbit.2:pass_PHI2.1:enhh gate\n"
  in
  let expected =
    match Dic.Netcompare.parse expected_src with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  (match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.with_expected_netlist engine (Some expected)) design with
  | Error e -> failwith e
  | Ok (result, _) ->
    let mismatches = Dic.Report.by_rule_prefix result.Dic.Engine.report "netcmp" in
    Format.printf "@.--- net list vs intent (correct design) ---@.";
    if List.exists (fun (v : Dic.Report.violation) -> v.Dic.Report.severity = Dic.Report.Error) mismatches
    then List.iter (fun v -> Format.printf "%a@." Dic.Report.pp_violation v) mismatches
    else Format.printf "consistent.@.");

  (* Now claim the wrong intent: stage 1 clocked by PHI2. *)
  let wrong =
    match Dic.Netcompare.parse "net PHI2!\n0:sbit.0:pass_PHI1.1:enhh gate\n" with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.with_expected_netlist engine (Some wrong)) design with
  | Error e -> failwith e
  | Ok (result, _) ->
    Format.printf "@.--- net list vs a wrong intent ---@.";
    List.iter
      (fun v -> Format.printf "%a@." Dic.Report.pp_violation v)
      (Dic.Report.by_rule_prefix result.Dic.Engine.report "netcmp")
