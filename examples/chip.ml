(* A small "chip": a bonding pad feeding a 2-bit shift register through
   a metal-to-poly contact, with a PLA plane alongside — every workload
   generator and the whole pipeline in one assembly.

   Run with: dune exec examples/chip.exe *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda
let l v = v * lambda

let () =
  let register = Layoutgen.Shift.register ~lambda 2 in
  let pla =
    Layoutgen.Pla.plane ~lambda (Layoutgen.Pla.random_program ~rows:3 ~cols:4 ~seed:11)
  in
  (* Merge the two generated files and place their content: the shift
     register at (30, 0) lambda, the PLA at (0, 60); add a pad and the
     routing from pad to register input. *)
  let shift_calls =
    List.map
      (fun (c : Cif.Ast.call) ->
        { c with
          Cif.Ast.transform =
            Geom.Transform.compose (Geom.Transform.translate (l 30) 0) c.Cif.Ast.transform })
      register.Cif.Ast.top_calls
  in
  let pla_calls =
    List.map
      (fun (c : Cif.Ast.call) ->
        { c with
          Cif.Ast.transform =
            Geom.Transform.compose (Geom.Transform.translate 0 (l 60)) c.Cif.Ast.transform })
      pla.Cif.Ast.top_calls
  in
  let pla_labels = List.map (Layoutgen.Builder.translate_element 0 (l 60)) pla.Cif.Ast.top_elements in
  let chip =
    { Cif.Ast.symbols =
        register.Cif.Ast.symbols @ pla.Cif.Ast.symbols
        @ [ Layoutgen.Cells.pad ~lambda; Layoutgen.Cells.contact_poly ~lambda ];
      top_elements =
        pla_labels
        @ [ (* pad output in metal, into a metal-poly contact, then poly
               into the register's first pass gate *)
            Layoutgen.Builder.wire ~layer:"NM" ~net:"PADIN" ~width:(l 3)
              [ (l 10, l 8); (l 21, l 8) ];
            Layoutgen.Builder.wire ~layer:"NP" ~width:(l 2) [ (l 22, l 8); (l 28, l 8) ] ];
      top_calls =
        shift_calls @ pla_calls
        @ [ Layoutgen.Builder.call ~at:(0, l 2) Layoutgen.Cells.id_pad;
            Layoutgen.Builder.call ~at:(l 20, l 7) Layoutgen.Cells.id_conp ];
      waivers = [] }
  in
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) chip with
  | Error e -> failwith e
  | Ok (result, _) ->
    Format.printf "--- chip ---@.%a@.@." Dic.Engine.pp_summary result;
    List.iter
      (fun (v : Dic.Report.violation) ->
        if v.Dic.Report.severity = Dic.Report.Error then
          Format.printf "%a@." Dic.Report.pp_violation v)
      result.Dic.Engine.report.Dic.Report.violations;
    Format.printf "--- structure ---@.%a@.@." Dic.Structure.pp
      (Dic.Structure.compute result.Dic.Engine.nets);
    (match Netlist.Net.find_by_name result.Dic.Engine.netlist "PADIN" with
    | Some net ->
      Format.printf "pad net: %d terminal(s): %s@." (List.length net.Netlist.Net.terminals)
        (String.concat ", "
           (List.map
              (fun (t : Netlist.Net.terminal) ->
                t.Netlist.Net.device_path ^ "." ^ t.Netlist.Net.port)
              net.Netlist.Net.terminals))
    | None -> Format.printf "pad net missing!@.")
