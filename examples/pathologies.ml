(* Walk the paper's pathology figures: run each kit through the
   hierarchical checker (DIC) and the classical flat baseline, and
   report real-flagged / real-missed / false counts for each.

   A second section demonstrates the static lint pass on two designs
   that are structurally broken before any geometry runs: a wire too
   narrow to survive skeletal erosion (D005) and a call to a symbol
   that was never defined (D001).

   Run with: dune exec examples/pathologies.exe *)

let run_dic rules file =
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) file with
  | Ok (result, _) -> Dic.Classify.of_report result.Dic.Engine.report
  | Error msg -> failwith msg

let run_flat mode rules file = Dic.Classify.of_classic (Flatdrc.Classic.check mode rules file)

let () =
  let rules = Tech.Rules.nmos () in
  let lambda = rules.Tech.Rules.lambda in
  let tolerance = 2 * lambda in
  Printf.printf "%-8s %-8s %26s %26s\n" "kit" "figure"
    "DIC (flag/miss/false)" "flat (flag/miss/false)";
  List.iter
    (fun (kit : Layoutgen.Pathology.kit) ->
      let dic =
        Dic.Classify.classify ~tolerance kit.Layoutgen.Pathology.truths
          (run_dic rules kit.Layoutgen.Pathology.file)
      and flat =
        Dic.Classify.classify ~tolerance kit.Layoutgen.Pathology.truths
          (run_flat
             { Flatdrc.Classic.default_mode with Flatdrc.Classic.poly_diff = `Flag_all }
             rules kit.Layoutgen.Pathology.file)
      in
      let show (o : Dic.Classify.outcome) =
        Printf.sprintf "%d / %d / %d"
          (List.length o.Dic.Classify.flagged)
          (List.length o.Dic.Classify.missed)
          (List.length o.Dic.Classify.false_findings)
      in
      Printf.printf "%-8s %-8s %26s %26s\n" kit.Layoutgen.Pathology.kit_name
        kit.Layoutgen.Pathology.figure (show dic) (show flat);
      Printf.printf "         %s\n\n" kit.Layoutgen.Pathology.description)
    (Layoutgen.Pathology.all ~lambda);

  (* --- Static lint walkthrough ------------------------------------- *)
  (* Both designs here lint dirty without a single interaction check:
     the diagnostics come from [Dic.Lint.check_design], which only
     reads the syntax tree and the elaborated model. *)
  let b = lambda in
  let print_diags title expected diags =
    Format.printf "lint: %s (expect %s)@." title expected;
    if diags = [] then Format.printf "  (clean)@."
    else List.iter (fun d -> Format.printf "  %a@." Dic.Lint.pp_diagnostic d) diags;
    Format.printf "@."
  in
  (* A metal wire drawn at a third of the metal minimum width: erosion
     by skeleton_half collapses it, so connectivity through it is
     invisible to the checker (paper Sec. "skeletal" discussion). *)
  let skinny =
    Layoutgen.Builder.file
      ~symbols:
        [ Layoutgen.Builder.symbol ~id:1 ~name:"skinny"
            [ Layoutgen.Builder.box ~layer:"NM" ~net:"vdd" 0 0 (20 * b) (4 * b);
              Layoutgen.Builder.wire ~layer:"NM" ~net:"vdd" ~width:b
                [ (0, 2 * b); (40 * b, 2 * b) ] ]
            [] ]
      ~top_calls:[ Layoutgen.Builder.call 1 ]
      ()
  in
  print_diags "wire below minimum width" "D005"
    (Dic.Lint.check_design rules skinny);
  (* A top-level call to symbol 7, which no DS block defines: the
     checker cannot elaborate this file at all, and the lint names the
     missing definition instead of failing opaquely. *)
  let dangling =
    Layoutgen.Builder.file
      ~symbols:
        [ Layoutgen.Builder.symbol ~id:1 ~name:"cell"
            [ Layoutgen.Builder.box ~layer:"NM" 0 0 (20 * b) (4 * b) ]
            [] ]
      ~top_calls:[ Layoutgen.Builder.call 1; Layoutgen.Builder.call 7 ]
      ()
  in
  print_diags "call to an undefined symbol" "D001"
    (Dic.Lint.check_design rules dangling)
