(* Walk the paper's pathology figures: run each kit through the
   hierarchical checker (DIC) and the classical flat baseline, and
   report real-flagged / real-missed / false counts for each.

   Run with: dune exec examples/pathologies.exe *)

let run_dic rules file =
  match Dic.Engine.check (Dic.Engine.create rules) file with
  | Ok (result, _) -> Dic.Classify.of_report result.Dic.Engine.report
  | Error msg -> failwith msg

let run_flat mode rules file = Dic.Classify.of_classic (Flatdrc.Classic.check mode rules file)

let () =
  let rules = Tech.Rules.nmos () in
  let lambda = rules.Tech.Rules.lambda in
  let tolerance = 2 * lambda in
  Printf.printf "%-8s %-8s %26s %26s\n" "kit" "figure"
    "DIC (flag/miss/false)" "flat (flag/miss/false)";
  List.iter
    (fun (kit : Layoutgen.Pathology.kit) ->
      let dic =
        Dic.Classify.classify ~tolerance kit.Layoutgen.Pathology.truths
          (run_dic rules kit.Layoutgen.Pathology.file)
      and flat =
        Dic.Classify.classify ~tolerance kit.Layoutgen.Pathology.truths
          (run_flat
             { Flatdrc.Classic.default_mode with Flatdrc.Classic.poly_diff = `Flag_all }
             rules kit.Layoutgen.Pathology.file)
      in
      let show (o : Dic.Classify.outcome) =
        Printf.sprintf "%d / %d / %d"
          (List.length o.Dic.Classify.flagged)
          (List.length o.Dic.Classify.missed)
          (List.length o.Dic.Classify.false_findings)
      in
      Printf.printf "%-8s %-8s %26s %26s\n" kit.Layoutgen.Pathology.kit_name
        kit.Layoutgen.Pathology.figure (show dic) (show flat);
      Printf.printf "         %s\n\n" kit.Layoutgen.Pathology.description)
    (Layoutgen.Pathology.all ~lambda)
