(* A programmable logic array plane: the regular, structured workload
   the paper's hierarchical checking is designed for.  Generates a
   small programmed plane, renders it, checks it, and shows what the
   extracted net list knows about the logic.

   Run with: dune exec examples/pla_plane.exe *)

let () =
  let rules = Tech.Rules.nmos () in
  let lambda = rules.Tech.Rules.lambda in
  (* P0 = NOR(in0, in2); P1 = NOR(in1); P2 = NOR(in0, in1, in3). *)
  let program =
    [| [| true; false; true; false |];
       [| false; true; false; false |];
       [| true; true; false; true |] |]
  in
  let plane = Layoutgen.Pla.plane ~lambda program in
  Printf.printf "--- 3 products x 4 inputs (# poly, = metal, + diff, X cut) ---\n";
  print_string (Layoutgen.Render.file ~cell:100 rules plane);
  match Result.map Dic.Engine.primary @@ Dic.Engine.check (Dic.Engine.create rules) plane with
  | Error e -> failwith e
  | Ok (result, _) ->
    Format.printf "@.%a@.@." Dic.Engine.pp_summary result;
    Printf.printf "product terms as extracted from layout connectivity:\n";
    Array.iteri
      (fun r _ ->
        let name = Printf.sprintf "P%d" r in
        match Netlist.Net.find_by_name result.Dic.Engine.netlist name with
        | Some net ->
          let pulldowns =
            List.filter
              (fun (t : Netlist.Net.terminal) ->
                Tech.Device.is_transistor t.Netlist.Net.device)
              net.Netlist.Net.terminals
          in
          Printf.printf "  %s: NOR of %d input(s)  (drains: %s)\n" name
            (List.length pulldowns)
            (String.concat ", "
               (List.map (fun (t : Netlist.Net.terminal) -> t.Netlist.Net.device_path) pulldowns))
        | None -> Printf.printf "  %s: missing!\n" name)
      program
