(* Non-geometric construction rules (the paper's four): build a design
   violating each one and watch the electrical stage catch it.

   1. A net must have at least two devices on it.
   2. Power and ground must not be shorted.
   3. A bus may not connect to power or ground.
   4. A depletion device may not connect to ground.

   Run with: dune exec examples/erc_walkthrough.exe *)

let rules = Tech.Rules.nmos ()
let lambda = rules.Tech.Rules.lambda

(* One warm engine for every kit in the walkthrough. *)
let engine = Dic.Engine.create rules

let show title file =
  Printf.printf "--- %s ---\n" title;
  match Result.map Dic.Engine.primary @@ Dic.Engine.check engine file with
  | Error e -> Printf.printf "checker failed: %s\n\n" e
  | Ok (result, _) ->
    let electrical =
      Dic.Report.by_stage result.Dic.Engine.report Dic.Report.Electrical
    in
    if electrical = [] then print_endline "(electrically clean)"
    else List.iter (fun v -> Format.printf "%a@." Dic.Report.pp_violation v) electrical;
    print_newline ()

(* Swap a net label on every element of a symbol. *)
let relabel_symbol from_net to_net (s : Cif.Ast.symbol) =
  { s with
    Cif.Ast.elements =
      List.map
        (fun e ->
          if Cif.Ast.element_net e = Some from_net then Cif.Ast.with_net e (Some to_net)
          else e)
        s.Cif.Ast.elements }

let () =
  (* Rule 1: a lone inverter's input has a single device terminal. *)
  show "rule 1: floating net (single inverter input)" (Layoutgen.Cells.chain ~lambda 1);

  (* Rule 2: strap VDD to GND in metal. *)
  let chain = Layoutgen.Cells.chain ~lambda 2 in
  let shorted, _ =
    Layoutgen.Inject.apply chain
      [ Layoutgen.Inject.supply_short ~lambda ~cell_origin:(0, 0) ]
  in
  show "rule 2: power and ground shorted" shorted;

  (* Rule 3: label a wire BUS0! and land it on the VDD rail. *)
  let bus_on_vdd =
    { chain with
      Cif.Ast.top_elements =
        chain.Cif.Ast.top_elements
        @ [ Layoutgen.Builder.wire ~layer:"NM" ~net:"BUS0!" ~width:(3 * lambda)
              [ (2 * lambda, 53 * lambda / 2); (2 * lambda, 40 * lambda) ] ] }
  in
  show "rule 3: bus connected to a supply" bus_on_vdd;

  (* Rule 4: an inverter whose VDD rail is mislabelled GND! puts the
     depletion load's drain on ground. *)
  let bad =
    { Cif.Ast.symbols =
        List.map
          (fun (s : Cif.Ast.symbol) ->
            if s.Cif.Ast.id = Layoutgen.Cells.id_inv then relabel_symbol "VDD!" "GND!" s
            else s)
          chain.Cif.Ast.symbols;
      top_elements = [];
      top_calls = [ Layoutgen.Builder.call ~at:(0, 0) Layoutgen.Cells.id_inv ];
      waivers = [] }
  in
  show "rule 4: depletion device connected to ground" bad
