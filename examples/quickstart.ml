(* Quickstart: generate a small NMOS inverter chain, run the full
   Design Integrity and Immunity Checker on it, and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let rules = Tech.Rules.nmos () in
  let lambda = rules.Tech.Rules.lambda in

  (* A four-inverter chain built from the cell library.  [chain]
     returns an extended-CIF syntax tree; print it to see the actual
     CIF text with net (4N) and device (4D) annotations. *)
  let design = Layoutgen.Cells.chain ~lambda 4 in
  print_endline "--- extended CIF (first 25 lines) ---";
  let cif_text = Cif.Print.to_string design in
  String.split_on_char '\n' cif_text
  |> List.filteri (fun i _ -> i < 25)
  |> List.iter print_endline;
  Printf.printf "... (%d bytes total)\n\n" (String.length cif_text);

  (* A line-printer check plot of one inverter cell
     (= metal, # poly, + diffusion, X contact, : implant, o buried). *)
  print_endline "--- the inverter cell ---";
  print_string (Layoutgen.Render.file rules (Layoutgen.Cells.chain ~lambda 1));
  print_newline ();

  (* Run the checker: parse -> elements -> devices -> connections ->
     net list -> interactions -> electrical rules.  [Engine.create]
     builds a session (reusable across designs, optionally backed by an
     on-disk cache); [Engine.check] runs one design through it. *)
  let engine = Dic.Engine.create rules in
  match Result.map Dic.Engine.primary @@ Dic.Engine.check engine design with
  | Error msg ->
    Printf.eprintf "checker failed: %s\n" msg;
    exit 1
  | Ok (result, _reuse) ->
    Format.printf "--- report ---@.%a@.@." Dic.Report.pp result.Dic.Engine.report;
    Format.printf "--- summary ---@.%a@.@." Dic.Engine.pp_summary result;
    Format.printf "--- nets ---@.%a@.@." Netlist.Net.pp result.Dic.Engine.netlist;
    Format.printf "--- stage timings ---@.";
    List.iter
      (fun (name, s) -> Format.printf "%-22s %.4fs@." name s)
      (Dic.Metrics.stage_seconds result.Dic.Engine.metrics);
    Format.printf "@.--- interaction matrix coverage ---@.%a@."
      Dic.Interactions.pp_stats result.Dic.Engine.interaction_stats
